"""Fig. 8: hardware redundancy (DMR/TMR) versus software anomaly detection.

Using the visual performance model of Krishnan et al. [16], the paper compares
the flight time and mission energy of DMR- and TMR-protected compute against
the anomaly-detection scheme on two vehicles (the AirSim UAV and a
DJI-Spark-class MAV) on an ARM Cortex-A57 companion computer.  Expected shape:
TMR costs the most, the penalty is far larger on the small DJI-class vehicle
(paper: 1.91x flight time versus 1.06x on the AirSim UAV), and the anomaly
scheme is essentially free.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.platforms.compute import get_platform
from repro.platforms.redundancy import RedundancyScheme, apply_redundancy
from repro.platforms.visual_performance import UAV_SPECS, VisualPerformanceModel

from conftest import print_artifact

#: End-to-end compute latency of the PPC pipeline on the Cortex-A57 (one
#: perception + planning response), from the compute platform model.
CORTEX_A57_LATENCY = (
    get_platform("cortex-a57").kernel_latency("octomap_generation")
    + get_platform("cortex-a57").kernel_latency("motion_planner")
)

SCHEMES = (
    RedundancyScheme.ANOMALY_DETECTION,
    RedundancyScheme.DMR,
    RedundancyScheme.TMR,
)


def _run_fig8():
    rows = []
    ratios = {}
    for uav_name in ("airsim", "dji_spark"):
        model = VisualPerformanceModel(UAV_SPECS[uav_name])
        baseline = apply_redundancy(model, RedundancyScheme.ANOMALY_DETECTION, CORTEX_A57_LATENCY)
        for scheme in SCHEMES:
            perf = apply_redundancy(model, scheme, CORTEX_A57_LATENCY)
            rows.append(
                [
                    uav_name,
                    scheme.value,
                    f"{perf.max_velocity:.1f}",
                    f"{perf.flight_time:.1f}",
                    f"{perf.flight_time / baseline.flight_time:.2f}x",
                    f"{perf.flight_energy / 1000:.1f}",
                    f"{perf.flight_energy / baseline.flight_energy:.2f}x",
                ]
            )
            if scheme == RedundancyScheme.TMR:
                ratios[uav_name] = perf.flight_time / baseline.flight_time
    return rows, ratios


@pytest.mark.smoke
def test_fig8_redundancy_comparison(benchmark):
    rows, ratios = benchmark.pedantic(_run_fig8, rounds=1, iterations=1)

    body = format_table(
        [
            "UAV",
            "Protection",
            "Velocity [m/s]",
            "Flight time [s]",
            "vs anomaly D&R",
            "Energy [kJ]",
            "vs anomaly D&R",
        ],
        rows,
        title="Fig. 8: DMR / TMR vs anomaly detection & recovery on Cortex-A57",
    )
    print_artifact("Fig. 8: hardware redundancy comparison", body)

    # TMR penalties: modest on the AirSim UAV, much larger on the DJI-class MAV
    # (the paper reports 1.06x and 1.91x respectively).
    assert 1.0 < ratios["airsim"] < 1.6
    assert ratios["dji_spark"] > 1.2
    assert ratios["dji_spark"] > ratios["airsim"]
