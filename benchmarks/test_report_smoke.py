"""Report-engine benchmark: the full paper bundle from a streamed campaign.

Streams the miniature farm campaign (golden + FI + both D&R schemes + the
detector-on-golden false-positive settings) to a JSONL store, runs the
streaming report engine over it and regenerates the whole artifact set in one
pass -- the ``python -m repro report`` code path end to end.  The smoke case
is part of the CI smoke job; it also re-checks the engine's shard-order
determinism on real campaign output.
"""

import json

import pytest

from repro.analysis.report import build_report, render_report, write_report
from repro.core.campaign import Campaign, CampaignConfig, RunSetting
from repro.core.executor import DETECTOR_AUTOENCODER, DETECTOR_GAUSSIAN
from repro.core.results import JsonlResultStore

from conftest import (
    CACHE_DIR,
    SMOKE_GOLDEN_RUNS,
    SMOKE_INJECTIONS_PER_STAGE,
    TRAINING_ENVIRONMENTS,
    print_artifact,
)


@pytest.fixture(scope="module")
def report_store(detectors, campaign_executor, tmp_path_factory):
    """One farm smoke campaign streamed to a JSONL shard (with FPR settings)."""
    config = CampaignConfig(
        environment="farm",
        num_golden=SMOKE_GOLDEN_RUNS,
        num_injections_per_stage=SMOKE_INJECTIONS_PER_STAGE,
        mission_time_limit=60.0,
        training_environments=TRAINING_ENVIRONMENTS,
        detector_cache_dir=CACHE_DIR,
    )
    campaign = Campaign(
        config, gad=detectors.gad, aad=detectors.aad, executor=campaign_executor
    )
    specs = campaign.evaluation_specs()
    specs += campaign.dr_golden_specs(DETECTOR_GAUSSIAN)
    specs += campaign.dr_golden_specs(DETECTOR_AUTOENCODER)
    store = JsonlResultStore(tmp_path_factory.mktemp("report-bench") / "farm.jsonl")
    campaign.run_specs(specs, store=store)
    return store


@pytest.mark.smoke
def test_smoke_report_bundle(benchmark, report_store, tmp_path):
    report = benchmark.pedantic(
        build_report, args=([report_store.path],), rounds=1, iterations=1
    )
    out = write_report(report, tmp_path / "report.json")

    body = render_report(report)
    print_artifact("Paper report bundle (repro report, smoke campaign)", body)

    settings = {group["setting"] for group in report["groups"]}
    assert set(RunSetting.EXTENDED) <= settings
    # Detection-accuracy rows exist for both detectors, with golden rows
    # contributing FPR material and injection rows TPR material.
    rows = {row["detector"]: row for row in report["detection_accuracy"]}
    assert set(rows) == {"gaussian", "autoencoder"}
    for row in rows.values():
        assert row["golden_runs"] > 0
        assert row["injected_runs"] > 0
        assert row["golden_checked_samples"] > 0
    assert any(row["tpr"] and row["tpr"] > 0 for row in rows.values())
    # The written artifact is strict JSON and round-trips.
    parsed = json.loads(out.read_text())
    assert parsed["schema"] == "repro-report-v1"


@pytest.mark.smoke
def test_smoke_report_shard_order_invariant(report_store, tmp_path):
    lines = report_store.path.read_text().splitlines()
    cut = len(lines) // 2
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    a.write_text("\n".join(lines[:cut]) + "\n")
    b.write_text("\n".join(lines[cut:]) + "\n")
    forward = write_report(build_report([a, b]), tmp_path / "forward.json")
    backward = write_report(build_report([b, a]), tmp_path / "backward.json")
    assert forward.read_bytes() == backward.read_bytes()
