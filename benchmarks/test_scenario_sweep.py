"""Scenario-sweep workload: QoF across the flight-scenario catalog.

The paper evaluates four still-air environments with one fixed mission; the
scenario subsystem multiplies that workload space with wind, sensor
degradation, multi-waypoint missions and two extra environment families.
This benchmark sweeps the preset catalog and reports the per-scenario QoF,
plus (in the smoke case) re-verifies the engine's serial-vs-parallel
bit-identity contract under the most hostile scenario axes.
"""

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.executor import ParallelExecutor, SerialExecutor
from repro.core.qof import summarize_runs
from repro.core.results import mission_result_to_dict
from repro.scenarios import get_scenario, scenario_names

from conftest import print_artifact
from repro.analysis.reporting import format_table

#: Scenarios exercised by the CI smoke job: one per axis (waypoints, wind +
#: degradation + waypoints, heavy sensor degradation), all on fast Farm maps.
SMOKE_SCENARIOS = ("patrol-farm", "blind-farm")


def _campaign(num_golden, scenario=None):
    config = CampaignConfig(
        environment="farm",
        scenario=scenario,
        num_golden=num_golden,
        mission_time_limit=90.0,
    )
    return Campaign(config)


@pytest.mark.smoke
def test_smoke_scenario_sweep_bit_identical():
    """A 2-worker scenario sweep matches the serial sweep bit for bit."""
    campaign = _campaign(num_golden=2)
    specs = campaign.scenario_sweep_specs(SMOKE_SCENARIOS)
    serial = campaign.run_specs(specs, executor=SerialExecutor())
    parallel = campaign.run_specs(specs, executor=ParallelExecutor(workers=2))
    assert len(serial) == len(parallel) == len(specs)
    for left, right in zip(serial, parallel):
        assert mission_result_to_dict(left) == mission_result_to_dict(right)
    rows = []
    for name in SMOKE_SCENARIOS:
        records = [r for r in serial if r.scenario == name]
        summary = summarize_runs(records)
        rows.append(
            [
                name,
                summary.num_runs,
                f"{summary.success_rate * 100:.0f}%",
                f"{summary.mean_flight_time:.1f}",
            ]
        )
    print_artifact(
        "Scenario sweep smoke: serial == 2-worker parallel",
        format_table(["Scenario", "Runs", "Success", "Mean flight [s]"], rows),
    )


def test_full_scenario_catalog_sweep(campaign_executor):
    """Sweep every registered scenario and report the QoF per scenario."""
    campaign = _campaign(num_golden=4)
    by_scenario = campaign.run_scenario_sweep(
        scenario_names(), executor=campaign_executor
    )
    rows = []
    any_fallback = False
    for name in sorted(by_scenario):
        scenario = get_scenario(name)
        summary = summarize_runs(by_scenario[name])
        # Mark rows whose statistics describe failed runs (no success).
        mark = "*" if summary.fell_back_to_failures else ""
        any_fallback = any_fallback or summary.fell_back_to_failures
        rows.append(
            [
                name,
                scenario.environment,
                summary.num_runs,
                f"{summary.success_rate * 100:.0f}%",
                f"{summary.mean_flight_time:.1f}{mark}",
                f"{summary.mean_energy / 1000:.1f}{mark}",
            ]
        )
    body = format_table(
        [
            "Scenario",
            "Environment",
            "Runs",
            "Success",
            "Mean flight [s]",
            "Mean energy [kJ]",
        ],
        rows,
    )
    if any_fallback:
        body += "\n(* statistics over failed runs: no mission of that scenario succeeded)"
    print_artifact("Scenario catalog sweep: QoF per preset", body)
    # The calm baseline scenario must stay reliable; hostile scenarios are
    # allowed to fail missions but must all have produced records.
    assert summarize_runs(by_scenario["calm-sparse"]).success_rate >= 0.75
    assert set(by_scenario) == set(scenario_names())
