"""Ablation (Section III-B): sensitivity to the corrupted bit field.

The paper observes that faults in the sign and exponent fields of float64
values have a far greater impact on the UAV than mantissa faults -- the
insight behind monitoring only the sign and exponent bits in the detectors.
This ablation injects single-bit faults restricted to each field into the
planning stage and compares the resulting QoF degradation.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.fault import BitField
from repro.core.qof import summarize_runs

from conftest import CACHE_DIR, print_artifact


def _run_ablation(detectors):
    config = CampaignConfig(
        environment="sparse",
        num_golden=6,
        num_injections_per_stage=6,
        detector_cache_dir=CACHE_DIR,
    )
    campaign = Campaign(config, gad=detectors.gad, aad=detectors.aad)
    golden = campaign.run_golden()
    by_field = {}
    for field in (BitField.MANTISSA, BitField.EXPONENT, BitField.SIGN):
        by_field[field.value] = campaign.run_stage_injections(
            f"fi_{field.value}", stages=("planning", "control"), bit_field=field
        )
    return golden, by_field


def test_bitfield_sensitivity(benchmark, detectors):
    golden, by_field = benchmark.pedantic(
        _run_ablation, args=(detectors,), rounds=1, iterations=1
    )

    golden_summary = summarize_runs(golden)
    rows = [
        [
            "golden",
            f"{golden_summary.success_rate * 100:.0f}%",
            f"{golden_summary.mean_flight_time:.1f}",
            f"{golden_summary.worst_flight_time:.1f}",
        ]
    ]
    summaries = {}
    for field, runs in by_field.items():
        summary = summarize_runs(runs)
        summaries[field] = summary
        rows.append(
            [
                field,
                f"{summary.success_rate * 100:.0f}%",
                f"{summary.mean_flight_time:.1f}",
                f"{summary.worst_flight_time:.1f}",
            ]
        )
    body = format_table(
        ["Bit field", "Success rate", "Mean flight time [s]", "Worst flight time [s]"],
        rows,
        title="Bit-field sensitivity of planning/control faults (Sparse)",
    )
    print_artifact("Ablation: sign/exponent vs mantissa sensitivity", body)

    # Mantissa faults must stay close to golden in mean flight time.
    assert summaries["mantissa"].mean_flight_time <= golden_summary.mean_flight_time * 1.2
    # Sign/exponent faults are allowed (and expected) to degrade the worst case
    # at least as much as mantissa faults do.
    worst_mantissa = summaries["mantissa"].worst_flight_time
    worst_signexp = max(
        summaries["sign"].worst_flight_time, summaries["exponent"].worst_flight_time
    )
    assert worst_signexp >= worst_mantissa * 0.9


@pytest.mark.smoke
def test_bitfield_smoke(smoke_campaign):
    """Field-restricted injection path: one mantissa and one sign fault."""
    by_field = {}
    for bit_field in (BitField.MANTISSA, BitField.SIGN):
        runs = smoke_campaign.run_stage_injections(
            f"fi_{bit_field.value}",
            stages=("planning",),
            count_per_stage=1,
            bit_field=bit_field,
        )
        assert len(runs) == 1
        assert runs[0].fault_target == "planning"
        by_field[bit_field.value] = runs
    summary = summarize_runs(by_field["mantissa"])
    assert summary.num_runs == 1
