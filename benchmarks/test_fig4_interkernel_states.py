"""Fig. 4: end-to-end fault tolerance of the inter-kernel states.

The paper corrupts each monitored inter-kernel state (time_to_collision,
future_collision_seq, the planned way-point coordinates/yaw/velocities and the
flight-command velocities) with a single bit flip and reports flight time and
success rate per state in the Sparse environment.

Expected shape: ``future_collision_seq`` is much more robust than
``time_to_collision``; corrupted way-point coordinates and velocities produce
the widest flight-time ranges.
"""

import pytest

from repro.analysis.reporting import format_distribution_table, format_table
from repro.core.qof import summarize_runs
from repro.pipeline.states import MONITORED_FEATURES

from conftest import print_artifact


def _run_fig4(campaign):
    golden = campaign.run_golden()
    by_state = campaign.run_state_injections(MONITORED_FEATURES)
    return golden, by_state


def test_fig4_interkernel_state_fault_tolerance(benchmark, sparse_campaign):
    golden, by_state = benchmark.pedantic(
        _run_fig4, args=(sparse_campaign,), rounds=1, iterations=1
    )

    distributions = {"Golden": [r.flight_time for r in golden if r.success]}
    success_rows = [["Golden", f"{summarize_runs(golden).success_rate * 100:.1f}%"]]
    for state, runs in by_state.items():
        distributions[state] = [r.flight_time for r in runs if r.success]
        success_rows.append([state, f"{summarize_runs(runs).success_rate * 100:.1f}%"])

    body = format_distribution_table(
        distributions,
        title="Fig. 4: flight time with corrupted inter-kernel states (Sparse)",
    )
    body += "\n\n" + format_table(
        ["Inter-kernel state", "Success rate"],
        success_rows,
        title="Fig. 4: task success rate per corrupted state",
    )
    print_artifact("Fig. 4: error propagation across PPC stages", body)

    # Every state was exercised and the golden baseline is healthy.
    assert set(by_state) == set(MONITORED_FEATURES)
    assert summarize_runs(golden).success_rate >= 0.8


@pytest.mark.smoke
def test_fig4_smoke(smoke_campaign):
    """Per-state characterisation path on two states of the smoke campaign."""
    states = list(MONITORED_FEATURES[:2])
    by_state = smoke_campaign.run_state_injections(states, count_per_state=1)
    assert set(by_state) == set(states)
    distributions = {
        state: [r.flight_time for r in runs if r.success]
        for state, runs in by_state.items()
    }
    body = format_distribution_table(
        distributions, title="Fig. 4 (smoke): corrupted inter-kernel states (Farm)"
    )
    for state in states:
        assert state in body
        assert all(r.fault_target == state for r in by_state[state])
