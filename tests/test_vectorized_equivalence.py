"""Vectorized-vs-scalar equivalence tests for the hot-path kernels.

The vectorized kernels (array-backed occupancy map, batched back-projection,
KD-tree collision checks, batched detector scoring, bit-twiddled sign-exponent
transform) must behave exactly like their scalar references: identical
occupancy keys and log-odds, identical collision verdicts, identical detector
scores on seeded workloads -- and, end to end, bit-identical campaign results
under ``REPRO_SCALAR_KERNELS=1``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.scalar_ref import (
    ScalarCollisionChecker,
    scalar_aad_errors,
    scalar_gad_scores,
    scalar_point_cloud,
    scalar_sign_exponent,
)
from repro.bench.workloads import build_workload
from repro.core.injector import FaultInjectorNode, FaultPlan
from repro.core.results import mission_result_to_dict
from repro.detection.gaussian import GadConfig
from repro.detection.preprocess import sign_exponent_transform
from repro.perception.collision_check import CollisionChecker
from repro.perception.occupancy import (
    OccupancyMap,
    ScalarOccupancyMap,
    make_occupancy_map,
    use_scalar_kernels,
)
from repro.perception.point_cloud import PointCloudGenerator
from repro.pipeline.builder import PipelineConfig, build_pipeline
from repro.pipeline.runner import MissionRunner


@pytest.fixture(scope="module")
def workload():
    """The (smoke-sized) bench workload shared by the equivalence tests."""
    return build_workload(smoke=True, seed=3)


class TestOccupancyEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), resolution=st.floats(0.4, 2.5))
    def test_random_clouds_identical_store(self, seed, resolution):
        """Property: both backends agree on keys, log-odds and verdicts."""
        rng = np.random.default_rng(seed)
        vector = OccupancyMap(resolution=resolution)
        scalar = ScalarOccupancyMap(resolution=resolution)
        for _ in range(4):
            cloud = rng.uniform(-40.0, 60.0, size=(int(rng.integers(0, 400)), 3))
            cloud[rng.random(len(cloud)) < 0.05] = np.nan
            assert vector.insert_point_cloud(cloud) == scalar.insert_point_cloud(cloud)
        assert vector.all_keys() == scalar.all_keys()
        assert vector.occupied_keys() == scalar.occupied_keys()
        for key in vector.all_keys():
            assert vector.log_odds_at(key) == scalar.log_odds_at(key)
        queries = rng.uniform(-45.0, 65.0, size=(200, 3))
        assert np.array_equal(vector.query(queries), scalar.query(queries))
        np.testing.assert_array_equal(
            vector.occupied_centers(), scalar.occupied_centers()
        )

    def test_mission_scale_clouds_identical(self, workload):
        """The real camera-sweep clouds integrate identically."""
        vector, scalar = OccupancyMap(), ScalarOccupancyMap()
        for cloud in workload.clouds:
            assert vector.insert_point_cloud(cloud) == scalar.insert_point_cloud(cloud)
        assert vector.all_keys() == scalar.all_keys()
        assert vector._log_odds == scalar._log_odds

    def test_set_voxel_and_clamp_identical(self):
        vector, scalar = OccupancyMap(clamp=2.0), ScalarOccupancyMap(clamp=2.0)
        for backend in (vector, scalar):
            for _ in range(5):
                backend.insert_point_cloud(np.array([[1.0, 1.0, 1.0]]))
            backend.set_voxel((4, -2, 1), True)
            backend.set_voxel((1, 1, 1), False)
        assert vector._log_odds == scalar._log_odds
        assert vector.num_occupied == scalar.num_occupied

    def test_far_outside_points_clip_identically(self):
        """Corruption-scale coordinates land in the same clipped voxel."""
        cloud = np.array([[1e30, -1e30, 5.0], [2.0, 3.0, 1.0]])
        vector, scalar = OccupancyMap(), ScalarOccupancyMap()
        assert vector.insert_point_cloud(cloud) == scalar.insert_point_cloud(cloud)
        assert vector.all_keys() == scalar.all_keys()

    def test_factory_respects_escape_hatch(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALAR_KERNELS", raising=False)
        assert not use_scalar_kernels()
        assert isinstance(make_occupancy_map(), OccupancyMap)
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
        assert use_scalar_kernels()
        assert isinstance(make_occupancy_map(), ScalarOccupancyMap)
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "0")
        assert isinstance(make_occupancy_map(), OccupancyMap)


class TestPointCloudEquivalence:
    @pytest.mark.parametrize("stride", [1, 2, 3])
    def test_back_projection_matches_per_pixel_loop(self, workload, stride):
        generator = PointCloudGenerator(stride=stride)
        for frame in workload.depth_frames:
            vector = np.asarray(generator.compute(frame).points)
            scalar = scalar_point_cloud(frame, stride=stride)
            assert vector.shape == scalar.shape
            np.testing.assert_allclose(vector, scalar, rtol=1e-12, atol=1e-12)

    def test_direction_cache_is_bit_identical_across_frames(self, workload):
        """The cached direction grid gives the same cloud as a fresh kernel."""
        cached = PointCloudGenerator()
        for frame in workload.depth_frames:
            first = cached.compute(frame).points
            fresh = PointCloudGenerator().compute(frame).points
            np.testing.assert_array_equal(first, fresh)


class TestCollisionEquivalence:
    def test_verdicts_match_brute_force(self, workload):
        vector, scalar = CollisionChecker(), ScalarCollisionChecker()
        vector.update_map(workload.occupied_centers, resolution=1.0)
        scalar.update_map(workload.occupied_centers, resolution=1.0)
        for pose in workload.query_poses:
            ttc_v = vector.time_to_collision(pose["position"], pose["velocity"])
            ttc_s = scalar.time_to_collision(pose["position"], pose["velocity"])
            assert ttc_v == pytest.approx(ttc_s, rel=1e-9)
            assert vector.trajectory_collides(
                pose["waypoints"], pose["position"]
            ) == scalar.trajectory_collides(pose["waypoints"], pose["position"])
            assert vector.distance_to_nearest(pose["position"]) == pytest.approx(
                scalar.distance_to_nearest(pose["position"]), rel=1e-9
            )

    def test_fingerprint_skips_rebuild_only_for_identical_maps(self, workload):
        checker = CollisionChecker()
        checker.update_map(workload.occupied_centers, resolution=1.0)
        tree_before = checker._tree
        checker.update_map(workload.occupied_centers.copy(), resolution=1.0)
        assert checker._tree is tree_before  # unchanged content: no rebuild
        changed = workload.occupied_centers + 1.0
        checker.update_map(changed, resolution=1.0)
        assert checker._tree is not tree_before


class TestDetectorEquivalence:
    def test_gad_batch_matches_per_cell_reference(self, workload):
        features = list(workload.gad.detectors)
        anomalous, _, _ = workload.gad.score_batch(workload.detector_window, features)
        expected = scalar_gad_scores(workload.gad, workload.detector_window, features)
        np.testing.assert_array_equal(anomalous, expected)

    def test_gad_batch_matches_sequential_frozen_checks(self, workload):
        """score_batch agrees with CGad.check run sample by sample."""
        gad = workload.gad
        for detector in gad.detectors.values():
            detector.config = GadConfig(online_update=False)
        features = list(gad.detectors)
        anomalous, scores, thresholds = gad.score_batch(
            workload.detector_window[:64], features
        )
        for row in range(64):
            for col, feature in enumerate(features):
                decision = gad.detectors[feature].check(
                    workload.detector_window[row, col]
                )
                assert decision.anomalous == bool(anomalous[row, col])
                assert decision.score == pytest.approx(scores[row, col], rel=1e-12)
                assert decision.threshold == pytest.approx(
                    thresholds[row, col], rel=1e-12
                )

    def test_aad_batch_matches_row_by_row(self, workload):
        batched = workload.aad.score_batch(workload.detector_window)
        rows = scalar_aad_errors(workload.aad, workload.detector_window)
        np.testing.assert_allclose(batched, rows, rtol=1e-9, atol=1e-12)

    def test_aad_check_batch_matches_check_sample_verdicts(self, workload):
        """check_batch agrees with the online path on stateless windows."""
        import copy

        aad = workload.aad
        window = workload.detector_window[:64]
        anomalous, errors = aad.check_batch(window)
        np.testing.assert_array_equal(anomalous, errors > aad.threshold)
        features = aad.features
        for row in range(len(window)):
            fresh = copy.deepcopy(aad)  # per-row: no delta-state carry-over
            verdict, error = fresh.check_sample(dict(zip(features, window[row])))
            assert verdict == bool(anomalous[row])
            assert error == pytest.approx(errors[row], rel=1e-9)

    def test_gad_batch_honours_per_cgad_configs(self, workload):
        """Diverging one cGAD's config changes score_batch like CGad.check."""
        import copy

        gad = copy.deepcopy(workload.gad)
        features = list(gad.detectors)
        victim = features[0]
        gad.detectors[victim].config = GadConfig(n_sigma=0.5, online_update=False)
        anomalous, _, thresholds = gad.score_batch(workload.detector_window, features)
        expected = scalar_gad_scores(gad, workload.detector_window, features)
        np.testing.assert_array_equal(anomalous, expected)
        decision = gad.detectors[victim].check(workload.detector_window[0, 0])
        assert decision.threshold == pytest.approx(thresholds[0, 0], rel=1e-12)
        assert anomalous[:, 0].any()  # 0.5 sigma must actually fire


class TestPreprocessEquivalence:
    def test_edge_cases(self):
        values = np.array(
            [
                0.0, -0.0, 1.0, -1.0, 1.5, -2.75, 1e-300, -1e-300, 5e-324,
                1e-8, -1e-8, 1e8, 1e308, -1e308, np.inf, -np.inf,
                np.nan, np.copysign(np.nan, -1.0),
            ]
        )
        np.testing.assert_array_equal(
            sign_exponent_transform(values), scalar_sign_exponent(values)
        )

    @settings(max_examples=50, deadline=None)
    @given(st.floats(allow_nan=True, allow_infinity=True))
    def test_property_any_float(self, value):
        assert sign_exponent_transform(np.array([value]))[0] == scalar_sign_exponent(
            np.array([value])
        )[0]

    def test_update_array_matches_sequential_updates(self):
        from repro.detection.preprocess import DataPreprocessor

        rng = np.random.default_rng(5)
        values = rng.normal(0.0, 100.0, size=37)
        values[5], values[9] = np.nan, np.inf
        batched_pre, sequential_pre = DataPreprocessor(), DataPreprocessor()
        batched = batched_pre.update_array("f", values)
        sequential = [sequential_pre.update("f", v) for v in values]
        assert sequential[0] is None  # first-ever sample yields no delta
        assert list(batched) == sequential[1:]
        # State carries across calls identically on both paths.
        batched2 = batched_pre.update_array("f", values[:5])
        sequential2 = [sequential_pre.update("f", v) for v in values[:5]]
        assert list(batched2) == sequential2
        assert batched_pre._previous == sequential_pre._previous


def _fly(monkeypatch, scalar: bool, fault_plan=None):
    """One fixed-seed mission with the selected kernel backend."""
    if scalar:
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
    else:
        monkeypatch.delenv("REPRO_SCALAR_KERNELS", raising=False)
    handles = build_pipeline(
        PipelineConfig(environment="farm", seed=2, mission_time_limit=60.0)
    )
    if fault_plan is not None:
        handles.graph.add_node(FaultInjectorNode(fault_plan, handles.kernels))
    return MissionRunner(handles).run(setting="equivalence", seed=2)


class TestCampaignEquivalence:
    def test_golden_mission_bit_identical_across_backends(self, monkeypatch):
        vector = _fly(monkeypatch, scalar=False)
        scalar = _fly(monkeypatch, scalar=True)
        assert mission_result_to_dict(vector) == mission_result_to_dict(scalar)

    def test_octomap_state_injection_bit_identical_across_backends(self, monkeypatch):
        """The fault path that enumerates map voxels picks the same victim."""
        plan = FaultPlan(
            target_type="kernel", target="octomap_generation",
            injection_time=6.0, bit=40, seed=9,
        )
        vector = _fly(monkeypatch, scalar=False, fault_plan=plan)
        scalar = _fly(monkeypatch, scalar=True, fault_plan=plan)
        assert mission_result_to_dict(vector) == mission_result_to_dict(scalar)
