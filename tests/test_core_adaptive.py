"""Tests for the adaptive campaign driver (``repro.core.adaptive``).

Covers the ISSUE-8 determinism and invariant contracts: identical
(budget, seed) produce a byte-identical ``adaptive-plan-v1`` audit trail and
identical sampled spec-key sets across serial vs 2-worker execution and
across shard-resume restarts; bisection brackets always contain a known
synthetic boundary and terminate within their probe budget; and the plan
validator accepts driver output while rejecting structurally corrupt trails.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adaptive import (
    BISECT_BUDGET,
    BISECT_CONVERGED,
    BISECT_NO_BOUNDARY,
    BISECT_PROBE_BUDGET,
    PLAN_SCHEMA,
    STOP_BUDGET,
    STOP_CONVERGED,
    AdaptiveConfig,
    AdaptiveDriver,
    CellKey,
    bisect_boundary,
    validate_plan,
    validate_plan_file,
    write_plan,
)
from repro.core.campaign import Campaign, CampaignConfig, RunSetting
from repro.core.executor import ParallelExecutor
from repro.core.results import JsonlResultStore


def _fast_campaign(**overrides) -> Campaign:
    config = CampaignConfig(
        environment="farm",
        num_golden=overrides.pop("num_golden", 3),
        mission_time_limit=overrides.pop("mission_time_limit", 60.0),
        **overrides,
    )
    return Campaign(config)


def _driver(campaign=None, *, stages=("planning",), bisect=False, **overrides):
    campaign = campaign if campaign is not None else _fast_campaign()
    config = AdaptiveConfig(
        budget=overrides.pop("budget", 12),
        ci_width=overrides.pop("ci_width", 0.3),
        round_size=overrides.pop("round_size", 2),
        min_runs=overrides.pop("min_runs", 4),
        bisect=bisect,
        bisect_max_probes=overrides.pop("bisect_max_probes", 4),
        bisect_tolerance=overrides.pop("bisect_tolerance", 2.0),
        **overrides,
    )
    return AdaptiveDriver(
        campaign,
        config,
        settings=(RunSetting.GOLDEN, RunSetting.INJECTION),
        stages=stages,
    )


def _plan_bytes(plan) -> str:
    return json.dumps(plan, sort_keys=True, indent=2)


def _sampled_keys(plan):
    keys = set()
    for cell in plan["cells"]:
        keys.update(cell["spec_keys"])
    return keys


class TestAdaptiveConfig:
    def test_defaults_are_valid(self):
        AdaptiveConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"budget": 0},
            {"ci_width": 0.0},
            {"ci_width": 1.0},
            {"confidence": 1.0},
            {"round_size": 0},
            {"min_runs": 0},
            {"max_rounds": 0},
            {"bisect_tolerance": 0.0},
            {"bisect_max_probes": -1},
            {"bisect_votes": 2},
            {"bisect_votes": 0},
        ],
    )
    def test_rejects_invalid_knobs(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveConfig(**kwargs)


class TestCellSpace:
    def test_fault_settings_get_one_cell_per_stage(self):
        driver = _driver(stages=("perception", "planning", "control"))
        keys = driver.cell_keys()
        assert CellKey("", RunSetting.GOLDEN, "") in keys
        for stage in ("perception", "planning", "control"):
            assert CellKey("", RunSetting.INJECTION, stage) in keys
        assert len(keys) == 4
        assert keys == sorted(keys)

    def test_unknown_setting_rejected(self):
        with pytest.raises(ValueError, match="unsupported adaptive settings"):
            AdaptiveDriver(_fast_campaign(), settings=("warp-drive",))

    def test_spec_keys_unique_and_reproducible(self):
        driver = _driver(stages=("planning",))
        cell = CellKey("", RunSetting.INJECTION, "planning")
        keys = [driver.spec_for(cell, i).key() for i in range(8)]
        assert len(set(keys)) == 8  # distinct runs, distinct keys
        again = [driver.spec_for(cell, i).key() for i in range(8)]
        assert keys == again
        # A fresh driver over a *larger* cell space derives identical keys:
        # a cell's sample stream never depends on which other cells exist.
        wider = _driver(stages=("perception", "planning", "control"))
        assert [wider.spec_for(cell, i).key() for i in range(8)] == keys

    def test_golden_indices_are_fresh_missions(self):
        driver = _driver()
        cell = CellKey("", RunSetting.GOLDEN, "")
        pool = driver._seed_pool
        specs = [driver.spec_for(cell, i) for i in range(2 * len(pool))]
        # Un-pooled seeds: every additional golden run is a new mission, so
        # Wilson tallies never double-count a replayed spec key.
        assert len({spec.key() for spec in specs}) == len(specs)
        assert [spec.seed for spec in specs[: len(pool)]] == pool

    def test_fault_cells_draw_from_common_seed_pool(self):
        driver = _driver()
        cell = CellKey("", RunSetting.INJECTION, "planning")
        pool = driver._seed_pool
        specs = [driver.spec_for(cell, i) for i in range(len(pool) + 1)]
        assert [spec.seed for spec in specs[: len(pool)]] == pool
        assert specs[len(pool)].seed == pool[0]  # wraps, but with a new plan
        assert specs[len(pool)].key() != specs[0].key()

    def test_probe_specs_use_distinct_setting_label(self):
        driver = _driver()
        cell = CellKey("", RunSetting.INJECTION, "planning")
        probe = driver.probe_spec(cell, 4.25, vote=0)
        assert probe.setting == "probe:injection:planning"
        assert probe.fault_plan is not None
        assert probe.fault_plan.injection_time == pytest.approx(4.25)
        assert probe.key() == driver.probe_spec(cell, 4.25, vote=0).key()
        assert probe.key() != driver.probe_spec(cell, 4.25, vote=1).key()
        assert probe.key() != driver.probe_spec(cell, 4.75, vote=0).key()


class TestDriverDeterminism:
    def test_plan_is_byte_identical_across_repeats(self):
        plan_a = _driver().run()
        plan_b = _driver().run()
        assert _plan_bytes(plan_a) == _plan_bytes(plan_b)

    def test_serial_vs_two_workers_byte_identical(self, tmp_path):
        serial_store = JsonlResultStore(tmp_path / "serial.jsonl")
        plan_serial = _driver().run(store=serial_store)

        parallel_store = JsonlResultStore(tmp_path / "parallel.jsonl")
        plan_parallel = _driver().run(
            executor=ParallelExecutor(workers=2), store=parallel_store
        )

        assert _plan_bytes(plan_serial) == _plan_bytes(plan_parallel)
        assert _sampled_keys(plan_serial) == _sampled_keys(plan_parallel)
        assert set(serial_store.load_results()) == set(parallel_store.load_results())

    def test_shard_resume_restart_is_byte_identical(self, tmp_path):
        path = tmp_path / "results.jsonl"
        plan_full = _driver(bisect=True).run(store=JsonlResultStore(path))

        # Simulate an interrupted campaign: keep only ~60% of the shard.
        lines = path.read_text().splitlines(keepends=True)
        keep = max(1, (len(lines) * 3) // 5)
        path.write_text("".join(lines[:keep]))

        plan_resumed = _driver(bisect=True).run(store=JsonlResultStore(path))
        assert _plan_bytes(plan_full) == _plan_bytes(plan_resumed)

    def test_complete_shard_resume_flies_nothing_new(self, tmp_path):
        path = tmp_path / "results.jsonl"
        _driver(bisect=True).run(store=JsonlResultStore(path))
        flown = []
        plan = _driver(bisect=True).run(
            store=JsonlResultStore(path),
            on_result=lambda spec, record: flown.append(spec.key()),
        )
        # on_result only fires for freshly flown missions; a complete shard
        # resumes every spec.
        assert flown == []
        assert plan["totals"]["runs_used"] > 0

    def test_seed_changes_the_sampled_keys(self):
        plan_a = _driver(_fast_campaign(seed=0)).run()
        plan_b = _driver(_fast_campaign(seed=1)).run()

        def fault_keys(plan):
            return {
                key
                for cell in plan["cells"]
                if cell["stage"]
                for key in cell["spec_keys"]
            }

        # Fault plans derive from the campaign seed, so fault-cell spec keys
        # are fully disjoint across seeds; golden cells shift their mission
        # seed range (overlapping keys are the same missions by design).
        assert fault_keys(plan_a).isdisjoint(fault_keys(plan_b))
        assert _sampled_keys(plan_a) != _sampled_keys(plan_b)


class TestDriverBudgeting:
    def test_early_stop_fires_and_respects_budget(self):
        plan = _driver(budget=12, ci_width=0.3, min_runs=4).run()
        assert plan["schema"] == PLAN_SCHEMA
        assert plan["totals"]["runs_used"] <= plan["totals"]["budget"]
        assert plan["totals"]["early_stopped"] >= 1
        converged = [
            c for c in plan["cells"] if c["stop_reason"] == STOP_CONVERGED
        ]
        for cell in converged:
            assert cell["runs"] >= 4
            assert cell["wilson"]["half_width"] <= 0.3
            assert cell["stop_round"] is not None

    def test_tiny_budget_reports_budget_stops(self):
        plan = _driver(budget=3, round_size=2, min_runs=4).run()
        assert plan["totals"]["runs_used"] <= 3
        assert any(c["stop_reason"] == STOP_BUDGET for c in plan["cells"])

    def test_budget_starved_bisection_reports_budget(self):
        # Sampling consumes the whole budget; bisection gets nothing.
        plan = _driver(budget=8, ci_width=0.01, bisect=True).run()
        assert plan["boundaries"]
        for boundary in plan["boundaries"]:
            assert boundary["reason"] == BISECT_BUDGET
            assert boundary["probes"] == 0

    def test_leftover_budget_funds_bisection(self):
        plan = _driver(budget=16, bisect=True).run()
        assert plan["boundaries"]
        total = plan["totals"]
        assert total["bisection_probes"] > 0
        assert total["runs_used"] == total["sampling_runs"] + total["bisection_probes"]
        # Everything survives in this easy fixture, so the window has no
        # survives/fails transition to refine.
        assert plan["boundaries"][0]["reason"] == BISECT_NO_BOUNDARY


class TestBisectBoundary:
    def test_validation(self):
        oracle = lambda t, vote: True  # noqa: E731
        with pytest.raises(ValueError):
            bisect_boundary(oracle, 5.0, 2.0, tolerance=0.5, max_probes=8)
        with pytest.raises(ValueError):
            bisect_boundary(oracle, 2.0, 9.0, tolerance=0.0, max_probes=8)
        with pytest.raises(ValueError):
            bisect_boundary(oracle, 2.0, 9.0, tolerance=0.5, max_probes=8, votes=2)

    @given(
        boundary=st.floats(min_value=2.1, max_value=8.9),
        tolerance=st.sampled_from([0.1, 0.25, 0.5, 1.0]),
    )
    @settings(max_examples=60, deadline=None)
    def test_step_oracle_bracket_contains_boundary(self, boundary, tolerance):
        probes = []

        def oracle(t, vote):
            probes.append(t)
            return t < boundary  # survives strictly before the boundary

        outcome = bisect_boundary(oracle, 2.0, 9.0, tolerance, max_probes=64)
        assert outcome.converged and outcome.reason == BISECT_CONVERGED
        assert outcome.lo <= boundary <= outcome.hi
        assert outcome.hi - outcome.lo <= tolerance
        assert outcome.lo_survives is True and outcome.hi_survives is False
        assert outcome.boundary == pytest.approx(0.5 * (outcome.lo + outcome.hi))
        # Endpoint evaluation plus one halving per bisection step.
        bound = 2 + math.ceil(math.log2((9.0 - 2.0) / tolerance))
        assert outcome.probes == len(probes) <= bound

    def test_inverted_step_oracle(self):
        outcome = bisect_boundary(
            lambda t, vote: t > 6.0, 2.0, 9.0, tolerance=0.25, max_probes=64
        )
        assert outcome.converged
        assert outcome.lo <= 6.0 <= outcome.hi
        assert outcome.lo_survives is False and outcome.hi_survives is True

    @pytest.mark.parametrize("survives", [True, False])
    def test_uniform_response_is_no_boundary(self, survives):
        outcome = bisect_boundary(
            lambda t, vote: survives, 2.0, 9.0, tolerance=0.5, max_probes=64
        )
        assert outcome.reason == BISECT_NO_BOUNDARY
        assert outcome.boundary is None
        assert outcome.probes == 2
        assert (outcome.lo, outcome.hi) == (2.0, 9.0)

    def test_noisy_boundary_contained_within_noise_band(self):
        """Deterministic noise inside |t - b| < delta flips the response;
        outside the band the oracle is truthful, so the bracket can miss the
        true boundary by at most delta per side."""
        boundary, delta = 5.3, 0.1

        def noisy(t, vote):
            truth = t < boundary
            if abs(t - boundary) < delta:
                # Deterministic flip pattern inside the noise band.
                return truth if int(t * 1000) % 2 == 0 else not truth
            return truth

        outcome = bisect_boundary(noisy, 2.0, 9.0, tolerance=0.5, max_probes=64)
        assert outcome.converged
        assert outcome.lo - delta <= boundary <= outcome.hi + delta

    def test_majority_vote_restores_exact_containment(self):
        """With votes=3 a single flipped vote per probe cannot change the
        majority, so the bracket contains the true boundary exactly."""
        boundary, delta = 5.3, 0.1

        def one_bad_vote(t, vote):
            truth = t < boundary
            if vote == 0 and abs(t - boundary) < delta:
                return not truth
            return truth

        outcome = bisect_boundary(
            one_bad_vote, 2.0, 9.0, tolerance=0.25, max_probes=96, votes=3
        )
        assert outcome.converged
        assert outcome.lo <= boundary <= outcome.hi
        assert outcome.probes % 3 == 0

    def test_probe_budget_terminates_early(self):
        outcome = bisect_boundary(
            lambda t, vote: t < 5.0, 2.0, 9.0, tolerance=0.01, max_probes=4
        )
        assert not outcome.converged
        assert outcome.reason == BISECT_PROBE_BUDGET
        assert outcome.probes <= 4
        assert outcome.lo <= 5.0 <= outcome.hi  # bracket invariant still holds

    def test_budget_below_endpoint_cost_probes_nothing(self):
        outcome = bisect_boundary(
            lambda t, vote: t < 5.0, 2.0, 9.0, tolerance=0.5, max_probes=1
        )
        assert outcome.probes == 0
        assert outcome.reason == BISECT_PROBE_BUDGET
        assert (outcome.lo, outcome.hi) == (2.0, 9.0)


class TestPlanValidation:
    @pytest.fixture(scope="class")
    def plan(self):
        return _driver(bisect=True).run()

    def test_driver_output_validates(self, plan):
        assert validate_plan(plan) is plan

    def test_round_trip_through_file(self, plan, tmp_path):
        path = write_plan(plan, tmp_path / "plan.json")
        loaded = validate_plan_file(path)
        assert _plan_bytes(loaded) == _plan_bytes(plan)

    def test_unreadable_file_rejected(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(ValueError, match="cannot read adaptive plan"):
            validate_plan_file(missing)
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        with pytest.raises(ValueError, match="cannot read adaptive plan"):
            validate_plan_file(garbage)

    def _corrupt(self, plan, mutate):
        copy = json.loads(json.dumps(plan, sort_keys=True))
        mutate(copy)
        with pytest.raises(ValueError, match="invalid adaptive-plan-v1"):
            validate_plan(copy)

    def test_rejects_wrong_schema(self, plan):
        self._corrupt(plan, lambda p: p.update(schema="adaptive-plan-v0"))

    def test_rejects_missing_section(self, plan):
        self._corrupt(plan, lambda p: p.pop("rounds"))

    # Regressions for sections the validator historically never looked at
    # (found by the RL011 schema-drift checker).

    def test_rejects_missing_campaign_field(self, plan):
        self._corrupt(plan, lambda p: p["campaign"].pop("environment"))

    def test_rejects_unordered_injection_window(self, plan):
        self._corrupt(
            plan, lambda p: p["campaign"].update(injection_window=[15.0, 10.0])
        )

    def test_rejects_bad_seed_pool_size(self, plan):
        self._corrupt(plan, lambda p: p["campaign"].update(seed_pool_size=0))

    def test_rejects_non_boolean_bisect_flag(self, plan):
        self._corrupt(plan, lambda p: p["config"].update(bisect="yes"))

    def test_rejects_even_bisect_votes(self, plan):
        self._corrupt(plan, lambda p: p["config"].update(bisect_votes=0))

    def test_rejects_out_of_range_cell_success_rate(self, plan):
        self._corrupt(plan, lambda p: p["cells"][0].update(success_rate=1.5))

    def test_rejects_boundary_without_votes(self, plan):
        def mutate(p):
            if not p["boundaries"]:
                pytest.skip("fixture plan produced no boundaries")
            p["boundaries"][0]["votes"] = 0

        self._corrupt(plan, mutate)

    def test_rejects_budget_overrun(self, plan):
        def mutate(p):
            p["totals"]["runs_used"] = p["totals"]["budget"] + 1
            p["totals"]["sampling_runs"] = (
                p["totals"]["runs_used"] - p["totals"]["bisection_probes"]
            )

        self._corrupt(plan, mutate)

    def test_rejects_allocation_tally_mismatch(self, plan):
        self._corrupt(
            plan, lambda p: p["cells"][0].update(runs=p["cells"][0]["runs"] + 1)
        )

    def test_rejects_successes_above_runs(self, plan):
        def mutate(p):
            cell = p["cells"][0]
            cell["successes"] = cell["runs"] + 1

        self._corrupt(plan, mutate)

    def test_rejects_unknown_stop_reason(self, plan):
        self._corrupt(plan, lambda p: p["cells"][0].update(stop_reason="tired"))

    def test_rejects_duplicate_cells(self, plan):
        self._corrupt(plan, lambda p: p["cells"].append(p["cells"][0]))

    def test_rejects_bracket_outside_window(self, plan):
        def mutate(p):
            boundary = p["boundaries"][0]
            boundary["bracket"] = [
                boundary["window"][0] - 1.0,
                boundary["window"][1],
            ]

        self._corrupt(plan, mutate)

    def test_rejects_probe_tally_mismatch(self, plan):
        def mutate(p):
            p["boundaries"][0]["probes"] += 1

        self._corrupt(plan, mutate)

    def test_rejects_spec_key_reordering(self, plan):
        def mutate(p):
            keys = p["cells"][0]["spec_keys"]
            keys.reverse()
            if keys == sorted(keys):  # degenerate single-key cell
                p["cells"][0]["spec_keys"] = [*keys, "bogus"]

        self._corrupt(plan, mutate)


class TestReportIngestion:
    def test_report_consumes_adaptive_shard_unchanged(self, tmp_path):
        from repro.analysis.report import build_report

        path = tmp_path / "results.jsonl"
        plan = _driver(bisect=True).run(store=JsonlResultStore(path))
        report = build_report([path], bootstrap_resamples=50)
        assert report["records"]["unique"] == plan["totals"]["runs_used"]
        settings_seen = {group["setting"] for group in report["groups"]}
        assert RunSetting.GOLDEN in settings_seen
        assert RunSetting.INJECTION in settings_seen
        # Bisection probes land in their own groups, not the cell tallies.
        assert any(s.startswith("probe:") for s in settings_seen)


class TestCli:
    def test_adaptive_flags_require_adaptive(self, capsys):
        from repro.cli import main

        assert main(["campaign", "--budget", "5"]) == 2
        err = capsys.readouterr().err
        assert "--budget" in err and "--adaptive" in err

    def test_validate_plan_cli(self, tmp_path, capsys):
        from repro.cli import main

        path = write_plan(_driver().run(), tmp_path / "plan.json")
        assert main(["campaign", "--validate-plan", str(path)]) == 0
        out = capsys.readouterr().out
        assert "valid adaptive-plan-v1 plan" in out

    def test_validate_plan_cli_rejects_corrupt(self, tmp_path, capsys):
        from repro.cli import main

        plan = _driver().run()
        plan["totals"]["cells"] += 1
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan, sort_keys=True))
        assert main(["campaign", "--validate-plan", str(path)]) == 2

    def test_adaptive_campaign_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        plan_path = tmp_path / "plan.json"
        out_path = tmp_path / "results.jsonl"
        code = main(
            [
                "campaign",
                "--adaptive",
                "--env",
                "farm",
                "--settings",
                "golden,injection",
                "--golden",
                "3",
                "--time-limit",
                "60",
                "--budget",
                "10",
                "--ci-width",
                "0.3",
                "--round-size",
                "2",
                "--plan-out",
                str(plan_path),
                "--out",
                str(out_path),
                "--quiet",
            ]
        )
        assert code == 0
        plan = validate_plan_file(plan_path)
        assert plan["totals"]["runs_used"] <= 10
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "Adaptive search" in out
