"""End-to-end integration tests: fault injection, detection and recovery.

These tests exercise the complete MAVFI stack the way the paper's evaluation
does, at a miniature scale: build the pipeline in a simulated environment, fly
missions with and without injected faults, attach the anomaly detection and
recovery node, and check the system-level behaviour.
"""

import copy

import pytest

from repro import topics
from repro.analysis.trajectory import compare_trajectories
from repro.core.fault import BitField
from repro.core.injector import FaultInjectorNode, FaultPlan
from repro.detection.node import attach_detection
from repro.detection.training import FeatureCollectorNode, collect_training_data, train_detectors
from repro.pipeline.builder import PipelineConfig, build_pipeline
from repro.pipeline.runner import MissionRunner


def _run_mission(environment="farm", seed=0, detector=None, fault_plan=None, planner="rrt_star"):
    handles = build_pipeline(
        PipelineConfig(environment=environment, seed=seed, planner_name=planner)
    )
    if detector is not None:
        attach_detection(handles, copy.deepcopy(detector))
    injector = None
    if fault_plan is not None:
        injector = FaultInjectorNode(fault_plan, handles.kernels)
        handles.graph.add_node(injector)
    result = MissionRunner(handles).run(setting="test", seed=seed)
    return result, handles, injector


class TestGoldenMissions:
    @pytest.mark.parametrize("environment", ["farm", "sparse"])
    def test_golden_mission_reaches_goal(self, environment):
        result, handles, _ = _run_mission(environment=environment)
        assert result.success
        assert result.flight_time < 60.0
        # All pipeline topics must have been exercised.
        for topic in (
            topics.DEPTH_IMAGE,
            topics.POINT_CLOUD,
            topics.OCCUPANCY_MAP,
            topics.COLLISION_CHECK,
            topics.TRAJECTORY,
            topics.FLIGHT_COMMAND,
        ):
            assert handles.graph.topic_bus.publish_count(topic) > 0

    @pytest.mark.parametrize("planner", ["rrt", "rrt_connect", "rrt_star"])
    def test_all_planner_variants_fly(self, planner):
        result, _, _ = _run_mission(environment="farm", planner=planner)
        assert result.success

    def test_golden_runs_are_repeatable(self):
        first, _, _ = _run_mission(environment="sparse", seed=3)
        second, _, _ = _run_mission(environment="sparse", seed=3)
        assert first.flight_time == pytest.approx(second.flight_time)
        assert first.mission_energy == pytest.approx(second.mission_energy)


class TestFaultInjectionEndToEnd:
    def test_sign_flip_on_planner_trajectory_causes_detour(self):
        golden, _, _ = _run_mission(environment="sparse", seed=5)
        plan = FaultPlan(
            target_type="state",
            target="waypoint_x",
            injection_time=4.0,
            bit=63,
            seed=11,
        )
        faulty, _, injector = _run_mission(environment="sparse", seed=5, fault_plan=plan)
        assert injector.injected
        # The corrupted way-point either lengthens the flight or leaves it
        # unchanged (when the way-point was already behind the vehicle), but
        # must never shorten it beyond numerical noise.
        assert faulty.flight_time >= golden.flight_time - 0.5

    def test_mantissa_faults_are_mostly_masked(self):
        golden, _, _ = _run_mission(environment="farm", seed=2)
        plan = FaultPlan(
            target_type="stage",
            target="planning",
            injection_time=4.0,
            bit_field=BitField.MANTISSA,
            seed=7,
        )
        faulty, _, _ = _run_mission(environment="farm", seed=2, fault_plan=plan)
        assert faulty.success
        assert faulty.flight_time == pytest.approx(golden.flight_time, rel=0.15)

    def test_detection_and_recovery_restores_flight_time(self, trained_gad):
        """A harmful trajectory corruption is caught by GAD and the flight restored."""
        golden, _, _ = _run_mission(environment="farm", seed=5)

        def harmful_plan():
            return FaultPlan(
                target_type="kernel",
                target="motion_planner",
                injection_time=4.0,
                bit=63,
                seed=21,
            )

        faulty, _, _ = _run_mission(environment="farm", seed=5, fault_plan=harmful_plan())
        recovered, handles, _ = _run_mission(
            environment="farm", seed=5, fault_plan=harmful_plan(), detector=trained_gad
        )
        detection_node = handles.extras["detection_node"]
        assert recovered.success
        # With D&R the flight time must not be worse than the unprotected run.
        assert recovered.flight_time <= faulty.flight_time + 0.5
        assert detection_node.checked_samples > 0

    def test_detection_statistics_recorded_in_result(self, trained_aad):
        plan = FaultPlan(
            target_type="state", target="waypoint_x", injection_time=4.0, bit=63, seed=3
        )
        result, _, _ = _run_mission(
            environment="farm", seed=1, fault_plan=plan, detector=trained_aad
        )
        assert result.detection_checked_samples > 0
        assert isinstance(result.detection_alarms_by_stage, dict)

    def test_trajectory_comparison_between_golden_and_faulty(self):
        golden, _, _ = _run_mission(environment="sparse", seed=5)
        plan = FaultPlan(
            target_type="state", target="waypoint_x", injection_time=4.0, bit=63, seed=11
        )
        faulty, _, _ = _run_mission(environment="sparse", seed=5, fault_plan=plan)
        comparison = compare_trajectories(faulty.trajectory, golden.trajectory)
        assert comparison.length_ratio >= 0.95


class TestTrainingHarness:
    def test_feature_collector_gathers_samples(self):
        handles = build_pipeline(PipelineConfig(environment="farm", seed=0))
        collector = FeatureCollectorNode()
        handles.graph.add_node(collector)
        MissionRunner(handles).run(setting="training", seed=0)
        assert len(collector.vectors) > 50
        assert any(collector.deltas["command_vx"])
        assert any(collector.deltas["waypoint_x"])

    def test_collect_training_data_shapes(self):
        deltas, vectors = collect_training_data(num_environments=1)
        assert vectors.ndim == 2 and vectors.shape[1] == 13
        assert set(deltas) >= {"command_vx", "waypoint_x", "time_to_collision"}

    def test_train_detectors_and_cache(self, tmp_path):
        first = train_detectors(num_environments=1, cache_dir=tmp_path)
        assert first.num_samples > 0
        assert (tmp_path / "gad_1.json").exists()
        assert (tmp_path / "aad_1.json").exists()
        # Second call must load from the cache (num_samples == 0 marks a load).
        second = train_detectors(num_environments=1, cache_dir=tmp_path)
        assert second.num_samples == 0
        assert second.aad.threshold == pytest.approx(first.aad.threshold)
