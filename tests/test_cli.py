"""Tests for the ``python -m repro`` command line interface."""

from __future__ import annotations

import re

import pytest

from repro.cli import main
from repro.core.results import JsonlResultStore
from repro.scenarios import scenario_names
from repro.version import __version__


def _campaign_args(tmp_path, *extra):
    return [
        "campaign",
        "--env",
        "farm",
        "--settings",
        "golden",
        "--golden",
        "2",
        "--time-limit",
        "60",
        "--out",
        str(tmp_path / "results.jsonl"),
        "--quiet",
        *extra,
    ]


def test_version_command(capsys):
    assert main(["version"]) == 0
    assert capsys.readouterr().out.strip() == __version__


def test_campaign_writes_jsonl_and_summarises(tmp_path, capsys):
    assert main(_campaign_args(tmp_path)) == 0
    out = capsys.readouterr().out
    assert "Campaign summary" in out
    assert "golden" in out
    store = JsonlResultStore(tmp_path / "results.jsonl")
    assert len(store) == 2

    assert main(["summarize", "--results", str(tmp_path / "results.jsonl")]) == 0
    assert "golden" in capsys.readouterr().out


def test_campaign_resumes_from_store(tmp_path, capsys):
    assert main(_campaign_args(tmp_path)) == 0
    capsys.readouterr()
    assert main(_campaign_args(tmp_path)) == 0
    out = capsys.readouterr().out
    assert "resumed from store: 2" in out
    # No duplicate records were appended on the resumed run.
    assert len(JsonlResultStore(tmp_path / "results.jsonl")) == 2


def test_summarize_deduplicates_rewritten_records(tmp_path, capsys):
    assert main(_campaign_args(tmp_path)) == 0
    assert main(_campaign_args(tmp_path, "--no-resume")) == 0
    # Two campaign passes -> 4 raw records, but each mission counts once.
    assert len(JsonlResultStore(tmp_path / "results.jsonl")) == 4
    capsys.readouterr()
    assert main(["summarize", "--results", str(tmp_path / "results.jsonl")]) == 0
    out = capsys.readouterr().out
    assert re.search(r"golden\s+2\s", out)


def test_campaign_parallel_workers(tmp_path, capsys):
    assert main(_campaign_args(tmp_path, "--workers", "2")) == 0
    out = capsys.readouterr().out
    assert "executor=parallel workers=2" in out
    assert len(JsonlResultStore(tmp_path / "results.jsonl")) == 2


def test_campaign_rejects_unknown_setting(tmp_path):
    with pytest.raises(SystemExit):
        main(["campaign", "--settings", "bogus"])


def test_summarize_missing_file_fails(tmp_path, capsys):
    assert main(["summarize", "--results", str(tmp_path / "none.jsonl")]) == 1
    assert "no intact records" in capsys.readouterr().out


def test_list_scenarios(capsys):
    assert main(["campaign", "--list-scenarios"]) == 0
    out = capsys.readouterr().out
    assert "Scenario catalog" in out
    for name in scenario_names():
        assert name in out


def test_campaign_with_scenario(tmp_path, capsys):
    assert main(_campaign_args(tmp_path, "--scenario", "patrol-farm")) == 0
    out = capsys.readouterr().out
    assert "scenarios=patrol-farm" in out
    assert "patrol-farm:golden" in out
    results = JsonlResultStore(tmp_path / "results.jsonl").load_results()
    assert len(results) == 2
    assert all(r.scenario == "patrol-farm" for r in results.values())
    # Summaries group scenario-tagged records under their scenario.
    capsys.readouterr()
    assert main(["summarize", "--results", str(tmp_path / "results.jsonl")]) == 0
    assert "patrol-farm:golden" in capsys.readouterr().out


def test_campaign_scenario_sweep(tmp_path, capsys):
    assert main(
        _campaign_args(tmp_path, "--scenario", "patrol-farm,blind-farm", "--golden", "1")
    ) == 0
    out = capsys.readouterr().out
    assert "patrol-farm:golden" in out
    assert "blind-farm:golden" in out
    assert len(JsonlResultStore(tmp_path / "results.jsonl")) == 2


def test_campaign_rejects_unknown_scenario(tmp_path, capsys):
    assert main(_campaign_args(tmp_path, "--scenario", "bogus")) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_campaign_rejects_unknown_environment(tmp_path, capsys):
    # Must fail fast with exit 2 -- the resilience engine would otherwise
    # retry and record the deterministic per-spec KeyError as harness
    # failures and exit 0 with an empty campaign.
    assert main(_campaign_args(tmp_path, "--env", "bogus")) == 2
    assert "unknown environment" in capsys.readouterr().err
