"""Tests for nodes, compute accounting and the node graph (crash/restart)."""

import pytest

from repro.rosmw.exceptions import DuplicateNodeError, NodeCrashError
from repro.rosmw.message import FlightCommandMsg
from repro.rosmw.node import Node


class EchoNode(Node):
    """Republishes incoming commands on an output topic."""

    def __init__(self):
        super().__init__("echo")
        self.received = []

    def on_start(self):
        self.pub = self.create_publisher("/out", FlightCommandMsg)
        self.create_subscription("/in", FlightCommandMsg, self._on_msg)

    def _on_msg(self, msg):
        self.received.append(msg)
        self.pub.publish(FlightCommandMsg(vx=msg.vx + 1))


class CrashyNode(Node):
    """Crashes on the first message, works afterwards."""

    def __init__(self):
        super().__init__("crashy")
        self.started_count = 0
        self.handled = 0

    def on_start(self):
        self.started_count += 1
        self.create_subscription("/in", FlightCommandMsg, self._on_msg)

    def _on_msg(self, msg):
        if self.started_count == 1:
            raise NodeCrashError("boom")
        self.handled += 1


class TestNodeBasics:
    def test_node_starts_and_subscribes(self, graph):
        node = EchoNode()
        graph.add_node(node)
        graph.start_all()
        graph.topic_bus.publish("/in", FlightCommandMsg(vx=1.0))
        assert len(node.received) == 1

    def test_publisher_stamps_header(self, graph):
        node = EchoNode()
        graph.add_node(node)
        graph.start_all()
        graph.clock.advance(3.5)
        graph.topic_bus.publish("/in", FlightCommandMsg())
        out = graph.topic_bus.last_message("/out")
        assert out.header.stamp == pytest.approx(3.5)
        assert out.header.seq == 0

    def test_publisher_sequence_increments(self, graph):
        node = EchoNode()
        graph.add_node(node)
        graph.start_all()
        graph.topic_bus.publish("/in", FlightCommandMsg())
        graph.topic_bus.publish("/in", FlightCommandMsg())
        assert graph.topic_bus.last_message("/out").header.seq == 1

    def test_shutdown_removes_subscriptions(self, graph):
        node = EchoNode()
        graph.add_node(node)
        graph.start_all()
        node.shutdown()
        graph.topic_bus.publish("/in", FlightCommandMsg())
        assert node.received == []

    def test_compute_accounting(self, graph):
        node = EchoNode()
        graph.add_node(node)
        graph.start_all()
        node.charge_compute(0.1)
        node.charge_compute(0.2, category="recovery")
        assert node.accounting.busy_time == pytest.approx(0.3)
        assert node.accounting.categories["recovery"] == pytest.approx(0.2)
        node.accounting.reset()
        assert node.accounting.busy_time == 0.0

    def test_negative_compute_charge_rejected(self, graph):
        node = EchoNode()
        graph.add_node(node)
        with pytest.raises(ValueError):
            node.charge_compute(-1.0)

    def test_duplicate_node_name_rejected(self, graph):
        graph.add_node(EchoNode())
        with pytest.raises(DuplicateNodeError):
            graph.add_node(EchoNode())


class TestCrashRestart:
    def test_crash_is_reported_and_restarted(self, graph):
        node = CrashyNode()
        graph.add_node(node)
        graph.start_all()
        graph.topic_bus.publish("/in", FlightCommandMsg())
        assert node.crash_count == 1
        assert graph.crashed_nodes == ["crashy"]
        graph.spin_until(0.1)  # restart happens during spin
        assert graph.crashed_nodes == []
        assert node.restart_count == 1
        assert node.alive

    def test_restarted_node_processes_messages_again(self, graph):
        node = CrashyNode()
        graph.add_node(node)
        graph.start_all()
        graph.topic_bus.publish("/in", FlightCommandMsg())
        graph.spin_until(0.1)
        graph.topic_bus.publish("/in", FlightCommandMsg())
        assert node.handled == 1

    def test_manual_crash_handling(self, graph):
        graph.auto_restart = False
        node = CrashyNode()
        graph.add_node(node)
        graph.start_all()
        graph.topic_bus.publish("/in", FlightCommandMsg())
        graph.spin_until(0.1)
        assert graph.crashed_nodes == ["crashy"]
        restarted = graph.handle_crashes()
        assert restarted == ["crashy"]


class TestGraphQueries:
    def test_node_lookup(self, graph):
        node = EchoNode()
        graph.add_node(node)
        assert graph.get_node("echo") is node
        assert graph.has_node("echo")
        assert not graph.has_node("missing")
        assert graph.node_names() == ["echo"]

    def test_total_compute_time(self, graph):
        a, b = EchoNode(), CrashyNode()
        graph.add_nodes([a, b])
        a.charge_compute(1.0)
        b.charge_compute(2.0, category="recovery")
        assert graph.total_compute_time() == pytest.approx(3.0)
        assert graph.total_compute_time("recovery") == pytest.approx(2.0)

    def test_reset_accounting(self, graph):
        node = EchoNode()
        graph.add_node(node)
        node.charge_compute(1.0)
        graph.reset_accounting()
        assert graph.total_compute_time() == 0.0

    def test_shutdown_all(self, graph):
        node = EchoNode()
        graph.add_node(node)
        graph.start_all()
        graph.shutdown_all()
        assert not node.alive
