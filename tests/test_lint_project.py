"""The whole-program pass: index tables and the project checkers RL008-RL012.

Each checker is exercised three ways against throwaway repos that mirror
the ``src/repro`` layout (the checkers match modules by rel-path suffix,
so fixture paths must look like the real tree): a positive fixture where
the contract is broken, a negative fixture where it holds, and a pragma
fixture proving one reasoned excuse silences the finding.  Ends with the
meta-test CI relies on: the live tree is clean under RL008-RL012 with no
baseline at all.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint.engine import (
    JSON_SCHEMA,
    collect_files,
    format_result,
    load_context,
    parse_result_payload,
    run_lint,
)
from repro.lint.project import (
    EDGE_LAZY,
    EDGE_TOPLEVEL,
    EDGE_TYPING,
    GRAPH_SCHEMA,
    ProjectIndex,
    module_name_for,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

PROJECT_CODES = ["RL008", "RL009", "RL010", "RL011", "RL012"]


def project(tmp_path: Path, files: dict) -> Path:
    """A throwaway repo root laid out like the real tree."""
    (tmp_path / "pyproject.toml").touch()
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


def build_index(root: Path) -> ProjectIndex:
    contexts = []
    for path in collect_files([Path("src")], root):
        ctx, _ = load_context(path, root)
        if ctx is not None:
            contexts.append(ctx)
    return ProjectIndex.build(contexts, root)


def lint(root: Path, select):
    return run_lint([Path("src")], root=root, select=select, use_baseline=False)


def codes(result):
    return [f.code for f in result.findings]


# ----------------------------------------------------------------- index pass
class TestProjectIndex:
    def test_module_name_for(self):
        assert module_name_for("repro/core/executor.py") == "repro.core.executor"
        assert module_name_for("repro/core/__init__.py") == "repro.core"
        assert module_name_for("README.md") == ""

    def test_import_edge_kinds(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/sim/world.py": """\
                from typing import TYPE_CHECKING

                import repro.topics

                if TYPE_CHECKING:
                    from repro.core import executor


                def lazily():
                    from repro.sim import sensors
                    return sensors
                """,
                "src/repro/topics.py": "CHANNEL = 'pose'\n",
                "src/repro/sim/sensors.py": "NOISE = 0.1\n",
                "src/repro/core/executor.py": "WORKERS = 1\n",
            },
        )
        index = build_index(root)
        edges = {
            (e.target, e.kind)
            for e in index.by_name["repro.sim.world"].import_edges
        }
        assert edges == {
            ("repro.topics", EDGE_TOPLEVEL),
            ("repro.core.executor", EDGE_TYPING),
            ("repro.sim.sensors", EDGE_LAZY),
        }

    def test_relative_import_resolves_via_package(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/sim/world.py": "from . import sensors\n",
                "src/repro/sim/sensors.py": "NOISE = 0.1\n",
            },
        )
        index = build_index(root)
        (edge,) = index.by_name["repro.sim.world"].import_edges
        assert edge.target == "repro.sim.sensors"
        assert edge.kind == EDGE_TOPLEVEL

    def test_constants_classes_functions_tables(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/core/executor.py": """\
                from dataclasses import dataclass

                KNOB_NAME = "REPRO_NO_CACHE"
                NOT_A_CONSTANT = 3


                @dataclass
                class RunSpec:
                    seed: int
                    index: int

                    def key(self):
                        return self.seed


                def execute(spec):
                    return spec
                """,
            },
        )
        info = build_index(root).by_name["repro.core.executor"]
        assert info.constants == {"KNOB_NAME": "REPRO_NO_CACHE"}
        cls = info.classes["RunSpec"]
        assert cls.is_dataclass
        assert list(cls.fields) == ["seed", "index"]
        assert set(info.functions) == {"RunSpec.key", "execute"}

    def test_find_class_and_find_function(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/core/executor.py": """\
                class RunSpec:
                    seed: int

                    def key(self):
                        return self.seed
                """,
            },
        )
        index = build_index(root)
        located = index.find_class("RunSpec")
        assert located is not None
        assert located[0].module == "repro.core.executor"
        found = index.find_function("repro/core/executor.py", "RunSpec.key")
        assert found is not None and found[1].name == "key"
        assert index.find_class("Missing") is None
        assert index.find_function("repro/core/executor.py", "nope") is None

    def test_graph_dict_artifact(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/sim/world.py": "import repro.topics\n",
                "src/repro/topics.py": "CHANNEL = 'pose'\n",
            },
        )
        graph = build_index(root).graph_dict()
        assert graph["schema"] == GRAPH_SCHEMA
        by_module = {n["module"]: n for n in graph["nodes"]}
        assert by_module["repro.sim.world"]["layer"] == "sim"
        assert by_module["repro.topics"]["layer"] == "foundation"
        assert {
            "src": "repro.sim.world",
            "dst": "repro.topics",
            "line": 1,
            "kind": EDGE_TOPLEVEL,
        } in graph["edges"]


# -------------------------------------------------- RL008 spec-key completeness
SPEC_PREAMBLE = """\
from dataclasses import dataclass


@dataclass(frozen=True)
class CampaignConfig:
    environment: str
    abort_grace: float


@dataclass(frozen=True)
class RunSpec:
    config: CampaignConfig
    seed: int
    index: int

    def key(self):
        return (self.seed, self._canonical())

    def _canonical(self):
        return (self.config.environment,)
"""


class TestSpecKeyCompleteness:
    def test_config_field_read_outside_key_is_flagged(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/core/executor.py": SPEC_PREAMBLE
                + """\


def execute(spec: RunSpec) -> int:
    cfg = spec.config
    return int(cfg.abort_grace)
"""
            },
        )
        (finding,) = lint(root, ["RL008"]).findings
        assert finding.code == "RL008"
        assert "CampaignConfig.abort_grace" in finding.message
        # Anchored at the field definition, not the read site.
        assert finding.path == "src/repro/core/executor.py"
        assert finding.line == 7

    def test_direct_spec_field_read_is_flagged(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/core/executor.py": SPEC_PREAMBLE,
                "src/repro/pipeline/runner.py": """\
                def replay(spec: "RunSpec") -> int:
                    return spec.index
                """,
            },
        )
        (finding,) = lint(root, ["RL008"]).findings
        assert "RunSpec.index" in finding.message
        assert "pipeline/runner.py" in finding.message

    def test_read_inside_nested_function_is_flagged(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/core/executor.py": SPEC_PREAMBLE
                + """\


def make_recorder():
    def record(spec: RunSpec) -> int:
        return spec.index
    return record
"""
            },
        )
        (finding,) = lint(root, ["RL008"]).findings
        assert "RunSpec.index" in finding.message

    def test_keyed_field_read_is_clean(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/core/executor.py": SPEC_PREAMBLE
                + """\


def execute(spec: RunSpec) -> int:
    return spec.seed
"""
            },
        )
        assert lint(root, ["RL008"]).findings == []

    def test_reads_outside_execution_modules_are_out_of_scope(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/core/executor.py": SPEC_PREAMBLE,
                "src/repro/analysis/report.py": """\
                def summarize(spec: "RunSpec") -> int:
                    return spec.index
                """,
            },
        )
        assert lint(root, ["RL008"]).findings == []

    def test_pragma_on_field_definition_excuses_every_read(self, tmp_path):
        source = SPEC_PREAMBLE.replace(
            "    index: int",
            "    index: int  # repro-lint: disable=RL008 reporting metadata only",
        )
        root = project(
            tmp_path,
            {
                "src/repro/core/executor.py": source
                + """\


def execute(spec: RunSpec) -> int:
    return spec.index
"""
            },
        )
        assert lint(root, ["RL008"]).findings == []

    def test_partial_tree_without_spec_classes_is_silent(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/pipeline/runner.py": """\
                def replay(spec: "RunSpec") -> int:
                    return spec.index
                """,
            },
        )
        assert lint(root, ["RL008"]).findings == []


# ------------------------------------------------------ RL009 layering checker
class TestLayering:
    def test_toplevel_upward_import_is_flagged(self, tmp_path):
        root = project(
            tmp_path,
            {"src/repro/sim/world.py": "import repro.analysis.report\n"},
        )
        (finding,) = lint(root, ["RL009"]).findings
        assert finding.code == "RL009"
        assert "repro.sim.world (sim) must not import" in finding.message
        assert "repro.analysis.report (surface)" in finding.message

    def test_lazy_import_of_restricted_module_is_flagged(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/sim/world.py": """\
                def peek():
                    from repro.analysis import report
                    return report
                """,
            },
        )
        (finding,) = lint(root, ["RL009"]).findings
        assert "even lazily" in finding.message
        assert "restricted to the surface layer" in finding.message

    def test_lazy_upward_import_of_unrestricted_module_is_sanctioned(
        self, tmp_path
    ):
        root = project(
            tmp_path,
            {
                "src/repro/sim/world.py": """\
                def peek():
                    from repro.core import campaign
                    return campaign
                """,
            },
        )
        assert lint(root, ["RL009"]).findings == []

    def test_lazy_import_of_executor_from_below_is_flagged(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/planning/motion.py": """\
                def plan():
                    from repro.core.executor import RunSpec
                    return RunSpec
                """,
                "src/repro/core/executor.py": "class RunSpec:\n    pass\n",
            },
        )
        (finding,) = lint(root, ["RL009"]).findings
        assert "repro.core.executor" in finding.message

    def test_type_checking_import_is_exempt(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/sim/world.py": """\
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from repro.analysis import report
                """,
            },
        )
        assert lint(root, ["RL009"]).findings == []

    def test_downward_toplevel_import_is_clean(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/sim/world.py": "import repro.topics\n",
                "src/repro/topics.py": "CHANNEL = 'pose'\n",
            },
        )
        assert lint(root, ["RL009"]).findings == []

    def test_toplevel_cycle_is_flagged_once(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/sim/alpha.py": "from repro.sim import beta\n",
                "src/repro/sim/beta.py": "from repro.sim import alpha\n",
            },
        )
        (finding,) = lint(root, ["RL009"]).findings
        assert "toplevel import cycle" in finding.message
        assert "repro.sim.alpha" in finding.message
        assert "repro.sim.beta" in finding.message

    def test_pragma_on_import_line_suppresses(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/sim/world.py": (
                    "import repro.analysis.report"
                    "  # repro-lint: disable=RL009 fixture tolerates inversion\n"
                ),
            },
        )
        assert lint(root, ["RL009"]).findings == []


# ------------------------------------------------------- RL010 knob lifecycle
KNOB_REGISTRY = """\
class Knob:
    def __init__(self, name, kind="flag"):
        self.name = name


USED = Knob(name="REPRO_USED")
DEAD = Knob(name="REPRO_DEAD")
"""

KNOB_READER = """\
from repro.core import knobs


def enabled():
    return knobs.flag("REPRO_USED")
"""


class TestKnobLifecycle:
    def test_dead_knob_flagged_at_registration(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/core/knobs.py": KNOB_REGISTRY,
                "src/repro/core/executor.py": KNOB_READER,
            },
        )
        (finding,) = lint(root, ["RL010"]).findings
        assert finding.path == "src/repro/core/knobs.py"
        assert "'REPRO_DEAD' is registered but never read" in finding.message

    def test_undeclared_read_flagged_at_read_site(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/core/knobs.py": KNOB_REGISTRY.replace(
                    'DEAD = Knob(name="REPRO_DEAD")\n', ""
                ),
                "src/repro/core/executor.py": KNOB_READER
                + """\


def ghost():
    return knobs.raw("REPRO_GHOST")
""",
            },
        )
        (finding,) = lint(root, ["RL010"]).findings
        assert finding.path == "src/repro/core/executor.py"
        assert "'REPRO_GHOST'" in finding.message
        assert "not declared in repro.core.knobs" in finding.message

    def test_read_through_module_constant_resolves(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/core/knobs.py": KNOB_REGISTRY,
                "src/repro/core/executor.py": """\
                from repro.core import knobs

                USED_ENV = "REPRO_USED"
                DEAD_ENV = "REPRO_DEAD"


                def read_both():
                    return knobs.flag(USED_ENV), knobs.raw(DEAD_ENV)
                """,
            },
        )
        assert lint(root, ["RL010"]).findings == []

    def test_read_through_wrapper_function_resolves(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/core/knobs.py": KNOB_REGISTRY,
                "src/repro/pipeline/builder.py": """\
                def env_flag(name):
                    from repro.core import knobs
                    return knobs.flag(name)
                """,
                "src/repro/pipeline/runner.py": """\
                from repro.pipeline.builder import env_flag


                def cached():
                    return env_flag("REPRO_USED")
                """,
                "src/repro/core/executor.py": """\
                from repro.core import knobs


                def dead_reader():
                    return knobs.flag("REPRO_DEAD")
                """,
            },
        )
        # Both knobs resolve: one through the wrapper, one directly.
        assert lint(root, ["RL010"]).findings == []

    def test_collection_arguments_count_as_reads(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/core/knobs.py": KNOB_REGISTRY,
                "src/repro/core/executor.py": KNOB_READER
                + """\


def pinned():
    with knobs.temporary({"REPRO_DEAD": "1"}):
        return None
""",
            },
        )
        assert lint(root, ["RL010"]).findings == []

    def test_tree_without_registry_is_silent(self, tmp_path):
        root = project(
            tmp_path,
            {"src/repro/core/executor.py": KNOB_READER},
        )
        assert lint(root, ["RL010"]).findings == []

    def test_pragma_on_registration_suppresses(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/core/knobs.py": KNOB_REGISTRY.replace(
                    'DEAD = Knob(name="REPRO_DEAD")',
                    'DEAD = Knob(name="REPRO_DEAD")'
                    "  # repro-lint: disable=RL010 reserved for the next driver",
                ),
                "src/repro/core/executor.py": KNOB_READER,
            },
        )
        assert lint(root, ["RL010"]).findings == []


# --------------------------------------------------------- RL011 schema drift
def baseline_module(emit_extra="", check_extra=""):
    """A fixture emitter/validator pair for the repro-lint-baseline-v1 contract."""
    return f"""\
def save_baseline(path, findings):
    payload = {{
        "schema": "repro-lint-baseline-v1",
        "findings": [
            {{"code": f.code, "path": f.path, "fingerprint": f.fingerprint{emit_extra}}}
            for f in findings
        ],
    }}
    return payload


def load_baseline_entries(path):
    data = {{"schema": "", "findings": []}}
    entries = []
    for row in data["findings"]:
        entries.append((row["code"], row["path"], row["fingerprint"]{check_extra}))
    return data["schema"], entries
"""


class TestSchemaDrift:
    def test_matching_emitter_and_validator_are_clean(self, tmp_path):
        root = project(
            tmp_path,
            {"src/repro/lint/baseline.py": baseline_module()},
        )
        assert lint(root, ["RL011"]).findings == []

    def test_emitted_but_unchecked_key_is_flagged(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/lint/baseline.py": baseline_module(
                    emit_extra=', "extra": 1'
                )
            },
        )
        (finding,) = lint(root, ["RL011"]).findings
        assert "'extra' is emitted by save_baseline" in finding.message
        assert "never checked" in finding.message

    def test_checked_but_never_emitted_key_is_flagged(self, tmp_path):
        root = project(
            tmp_path,
            {
                "src/repro/lint/baseline.py": baseline_module(
                    check_extra=', row["ghost"]'
                )
            },
        )
        (finding,) = lint(root, ["RL011"]).findings
        assert "checks key 'ghost'" in finding.message
        assert "no longer exists" in finding.message

    def test_fstring_mention_does_not_count_as_a_check(self, tmp_path):
        source = baseline_module(emit_extra=', "extra": 1').replace(
            "    return data[\"schema\"], entries",
            "    note = f\"{'extra'} is prose, not a check\"\n"
            "    return data[\"schema\"], entries, note",
        )
        root = project(tmp_path, {"src/repro/lint/baseline.py": source})
        (finding,) = lint(root, ["RL011"]).findings
        assert "'extra'" in finding.message

    def test_plain_constant_mention_counts_as_a_check(self, tmp_path):
        source = baseline_module(emit_extra=', "extra": 1').replace(
            "    entries = []",
            '    optional = ("extra",)\n    entries = list(optional[:0])',
        )
        root = project(tmp_path, {"src/repro/lint/baseline.py": source})
        assert lint(root, ["RL011"]).findings == []

    def test_partial_tree_skips_contract(self, tmp_path):
        # No validator function: the contract must not produce phantom drift.
        source = baseline_module(emit_extra=', "extra": 1').split(
            "def load_baseline_entries"
        )[0]
        root = project(tmp_path, {"src/repro/lint/baseline.py": source})
        assert lint(root, ["RL011"]).findings == []

    def test_pragma_on_emit_line_suppresses(self, tmp_path):
        source = baseline_module(emit_extra=', "extra": 1').replace(
            "for f in findings",
            "for f in findings"
            "  # repro-lint: disable=RL011 extra is a debugging aid, never read back",
        )
        # The emitted-key finding anchors at the dict-literal line; excuse it
        # with a standalone pragma on the preceding line instead.
        source = source.replace(
            '            {"code"',
            "            # repro-lint: disable=RL011 extra is a debugging aid\n"
            '            {"code"',
        )
        root = project(tmp_path, {"src/repro/lint/baseline.py": source})
        assert lint(root, ["RL011"]).findings == []


# ------------------------------------------------------ RL012 pickle boundary
RUNSPEC_STUB = "class RunSpec:\n    pass\n"


class TestPickleBoundary:
    def lint_one(self, tmp_path, body, extra_files=None):
        files = {"src/repro/core/executor.py": RUNSPEC_STUB}
        files.update(extra_files or {})
        files["src/repro/core/campaign.py"] = body
        return lint(project(tmp_path, files), ["RL012"])

    def test_lambda_into_aliased_spec_constructor(self, tmp_path):
        result = self.lint_one(
            tmp_path,
            """\
            from repro.core.executor import RunSpec as Spec


            def build():
                return Spec(callback=lambda: 1)
            """,
        )
        (finding,) = result.findings
        assert "a lambda" in finding.message
        assert "argument 'callback' of RunSpec(...)" in finding.message

    def test_nested_function_into_spec_constructor(self, tmp_path):
        result = self.lint_one(
            tmp_path,
            """\
            from repro.core.executor import RunSpec


            def build():
                def hook():
                    return 1
                return RunSpec(hook)
            """,
        )
        (finding,) = result.findings
        assert "nested function 'hook'" in finding.message
        assert "positional argument" in finding.message

    def test_lock_into_spec_constructor(self, tmp_path):
        result = self.lint_one(
            tmp_path,
            """\
            import threading

            from repro.core.executor import RunSpec


            def build():
                return RunSpec(lock=threading.Lock())
            """,
        )
        (finding,) = result.findings
        assert "threading.Lock() synchronization primitive" in finding.message

    def test_dataclasses_replace_is_a_boundary(self, tmp_path):
        result = self.lint_one(
            tmp_path,
            """\
            from dataclasses import replace


            def tweak(spec):
                return replace(spec, callback=lambda: 2)
            """,
        )
        (finding,) = result.findings
        assert "dataclasses.replace(...)" in finding.message

    def test_pool_initializer_and_initargs(self, tmp_path):
        result = self.lint_one(
            tmp_path,
            """\
            from concurrent.futures import ProcessPoolExecutor


            def setup(flag):
                return flag


            def pool_bad_initializer():
                return ProcessPoolExecutor(initializer=lambda: None)


            def pool_bad_initargs():
                return ProcessPoolExecutor(initializer=setup, initargs=(lambda: 1,))
            """,
        )
        messages = sorted(f.message for f in result.findings)
        assert len(messages) == 2
        assert "ProcessPoolExecutor initargs" in messages[0]
        assert "initializer" in messages[1]

    def test_submit_arguments_are_checked(self, tmp_path):
        result = self.lint_one(
            tmp_path,
            """\
            def run(pool):
                return pool.submit(lambda: 3)
            """,
        )
        (finding,) = result.findings
        assert "passed to submit()" in finding.message

    def test_module_level_function_is_picklable(self, tmp_path):
        result = self.lint_one(
            tmp_path,
            """\
            from repro.core.executor import RunSpec


            def task():
                return 1


            def build(pool):
                pool.submit(task)
                return RunSpec(callback=task)
            """,
        )
        assert result.findings == []

    def test_pragma_on_value_line_suppresses(self, tmp_path):
        result = self.lint_one(
            tmp_path,
            """\
            from repro.core.executor import RunSpec


            def build():
                return RunSpec(
                    callback=lambda: 1,  # repro-lint: disable=RL012 never leaves this process
                )
            """,
        )
        assert result.findings == []


# ----------------------------------------- stale baseline + prune + artifacts
VIOLATION = "import random\nx = random.random()\n"


def make_repo(tmp_path: Path, source: str = VIOLATION) -> Path:
    return project(tmp_path, {"src/repro/pipeline/fixture.py": source})


class TestStaleBaseline:
    def test_stale_entries_reported_without_failing(self, tmp_path):
        root = make_repo(tmp_path)
        assert repro_main(["lint", "--root", str(root), "--write-baseline"]) == 0
        (root / "src" / "repro" / "pipeline" / "fixture.py").write_text("VALUE = 1\n")
        result = run_lint([Path("src")], root=root)
        assert result.findings == []
        assert [e.code for e in result.stale_baseline] == ["RL001"]
        assert result.exit_code == 0
        text = format_result(result)
        assert "stale baseline entry" in text
        assert "--prune-baseline" in text
        payload = json.loads(format_result(result, fmt="json"))
        assert payload["counts"]["stale_baseline"] == 1
        assert payload["stale_baseline"][0]["code"] == "RL001"

    def test_prune_rewrites_the_baseline(self, tmp_path, capsys):
        root = make_repo(tmp_path)
        assert repro_main(["lint", "--root", str(root), "--write-baseline"]) == 0
        (root / "src" / "repro" / "pipeline" / "fixture.py").write_text("VALUE = 1\n")
        assert repro_main(["lint", "--root", str(root), "--prune-baseline"]) == 0
        assert "pruned 1 stale entry" in capsys.readouterr().out
        payload = json.loads((root / "lint-baseline.json").read_text())
        assert payload["findings"] == []
        result = run_lint([Path("src")], root=root)
        assert result.stale_baseline == []

    def test_prune_keeps_live_entries(self, tmp_path):
        root = make_repo(
            tmp_path, VIOLATION + "import time\nt = time.time()\n"
        )
        assert repro_main(["lint", "--root", str(root), "--write-baseline"]) == 0
        path = root / "src" / "repro" / "pipeline" / "fixture.py"
        path.write_text("import time\nt = time.time()\n")
        assert repro_main(["lint", "--root", str(root), "--prune-baseline"]) == 0
        payload = json.loads((root / "lint-baseline.json").read_text())
        assert [e["code"] for e in payload["findings"]] == ["RL002"]

    def test_prune_conflicts_with_no_baseline(self, tmp_path, capsys):
        root = make_repo(tmp_path)
        code = repro_main(
            ["lint", "--root", str(root), "--prune-baseline", "--no-baseline"]
        )
        assert code == 2
        assert "requires the baseline" in capsys.readouterr().out


class TestResultPayloadCompat:
    def test_v2_payload_passes_through(self, tmp_path):
        root = make_repo(tmp_path)
        raw = json.loads(
            format_result(run_lint([Path("src")], root=root, use_baseline=False), "json")
        )
        normalized = parse_result_payload(raw)
        assert normalized["schema"] == JSON_SCHEMA
        assert normalized["counts"]["stale_baseline"] == 0

    def test_v1_payload_is_normalized(self):
        normalized = parse_result_payload(
            {
                "schema": "repro-lint-v1",
                "files_checked": 3,
                "findings": [],
                "counts": {"total": 0, "new": 0, "baselined": 0},
            }
        )
        assert normalized["stale_baseline"] == []
        assert normalized["counts"]["stale_baseline"] == 0

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="lint result schema"):
            parse_result_payload({"schema": "repro-lint-v9"})
        with pytest.raises(ValueError, match="JSON object"):
            parse_result_payload(["not", "a", "dict"])


class TestGraphArtifactCli:
    def test_graph_written_even_without_project_checkers(self, tmp_path, capsys):
        root = make_repo(tmp_path, "VALUE = 1\n")
        out = root / "graph.json"
        code = repro_main(
            [
                "lint",
                "--root",
                str(root),
                "--select",
                "RL001",
                "--graph",
                str(out),
                "--no-baseline",
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == GRAPH_SCHEMA
        assert [n["module"] for n in payload["nodes"]] == ["repro.pipeline.fixture"]

    def test_graph_of_live_tree_is_substantial(self, tmp_path):
        out = tmp_path / "graph.json"
        result = run_lint(
            [Path("src/repro")],
            root=REPO_ROOT,
            select=["RL009"],
            use_baseline=False,
            graph_path=out,
        )
        assert result.findings == []
        payload = json.loads(out.read_text())
        modules = {n["module"] for n in payload["nodes"]}
        assert "repro.core.executor" in modules
        layers = {n["layer"] for n in payload["nodes"]}
        assert {"foundation", "sim", "kernel", "stages", "assembly", "engine", "surface"} <= layers
        assert payload["edges"], "live tree must have internal import edges"
        for edge in payload["edges"]:
            assert edge["kind"] in ("toplevel", "lazy", "typing")


# ------------------------------------------------------------------ meta-test
class TestLiveTreeContracts:
    """The acceptance gate: RL008-RL012 clean on src with no baseline at all."""

    def test_live_tree_clean_under_project_checkers(self):
        result = run_lint(
            [Path("src")],
            root=REPO_ROOT,
            select=PROJECT_CODES,
            use_baseline=False,
        )
        messages = [f.format_text() for f in result.findings]
        assert messages == [], "\n".join(messages)

    def test_project_checkers_selectable_via_cli(self, capsys):
        code = repro_main(
            [
                "lint",
                "--root",
                str(REPO_ROOT),
                "--select",
                ",".join(PROJECT_CODES),
                "--no-baseline",
                "src",
            ]
        )
        assert code == 0
        assert "0 findings" in capsys.readouterr().out
