"""Per-checker tests: true positives fire, clean idiomatic code does not."""

from pathlib import Path

import pytest

from repro.lint.engine import lint_file, resolve_checkers


def lint_source(
    tmp_path: Path,
    source: str,
    module_rel: str = "repro/pipeline/fixture.py",
    select=None,
):
    """Lint ``source`` as if it lived at src/<module_rel> in a repo root."""
    (tmp_path / "pyproject.toml").touch()
    path = tmp_path / "src" / module_rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    checkers = resolve_checkers(select=select)
    return lint_file(path, tmp_path, checkers)


def codes(findings):
    return sorted(f.code for f in findings)


# --------------------------------------------------------------------- RL001
class TestUnseededRandomness:
    def test_global_random_module(self, tmp_path):
        findings = lint_source(tmp_path, "import random\nx = random.random()\n")
        assert codes(findings) == ["RL001"]
        assert "module-global RNG" in findings[0].message

    def test_numpy_global_state_through_alias(self, tmp_path):
        source = "import numpy as np\nnp.random.seed(3)\ny = np.random.rand(4)\n"
        assert codes(lint_source(tmp_path, source)) == ["RL001", "RL001"]

    def test_bare_default_rng(self, tmp_path):
        source = "from numpy.random import default_rng\nrng = default_rng()\n"
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RL001"]
        assert "seed" in findings[0].message

    def test_seeded_default_rng_clean(self, tmp_path):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(42)\n"
            "inst = np.random.default_rng(seed=7)\n"
            "r = __import__('random').Random(3)\n"
        )
        assert lint_source(tmp_path, source) == []

    def test_seeded_random_instance_clean(self, tmp_path):
        source = "import random\nrng = random.Random(5)\nx = rng.random()\n"
        assert lint_source(tmp_path, source) == []

    def test_bench_layer_exempt(self, tmp_path):
        source = "import random\nx = random.random()\n"
        findings = lint_source(tmp_path, source, module_rel="repro/bench/fixture.py")
        assert findings == []


# --------------------------------------------------------------------- RL002
class TestWallClock:
    def test_time_calls(self, tmp_path):
        source = "import time\nt = time.time()\np = time.perf_counter()\n"
        assert codes(lint_source(tmp_path, source)) == ["RL002", "RL002"]

    def test_datetime_now_from_import(self, tmp_path):
        source = "from datetime import datetime\nstamp = datetime.now()\n"
        assert codes(lint_source(tmp_path, source)) == ["RL002"]

    def test_bench_cli_lint_exempt(self, tmp_path):
        source = "import time\nt = time.time()\n"
        for module_rel in (
            "repro/bench/fixture.py",
            "repro/cli.py",
            "repro/lint/fixture.py",
        ):
            assert lint_source(tmp_path, source, module_rel=module_rel) == []

    def test_time_sleep_clean(self, tmp_path):
        # Not a clock *read*; the checker only bans reading wall time.
        assert lint_source(tmp_path, "import time\ntime.sleep(0.1)\n") == []


# --------------------------------------------------------------------- RL003
class TestForkUnsafeCallback:
    def test_lambda_to_create_timer(self, tmp_path):
        source = (
            "class N:\n"
            "    def on_start(self):\n"
            "        self.create_timer(1.0, lambda: None)\n"
        )
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RL003"]
        assert "lambda" in findings[0].message

    def test_nested_def_to_subscription(self, tmp_path):
        source = (
            "class N:\n"
            "    def on_start(self):\n"
            "        def _cb(msg):\n"
            "            return msg\n"
            "        self.create_subscription('t', object, _cb)\n"
        )
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RL003"]
        assert "_cb" in findings[0].message

    def test_nested_def_to_pending_fault(self, tmp_path):
        source = (
            "def arm(self, rng, bit):\n"
            "    def corrupt(msg, fault_rng):\n"
            "        return None\n"
            "    self.arm_output_fault(PendingFault(corrupt=corrupt, rng=rng))\n"
        )
        findings = lint_source(tmp_path, source)
        assert len(findings) >= 1
        assert all(f.code == "RL003" for f in findings)

    def test_lambda_attribute_assignment(self, tmp_path):
        source = (
            "class N:\n"
            "    def configure(self):\n"
            "        self.handler = lambda req: req\n"
        )
        assert codes(lint_source(tmp_path, source)) == ["RL003"]

    def test_callable_object_clean(self, tmp_path):
        source = (
            "class _Handler:\n"
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "    def __call__(self, msg):\n"
            "        return self.node.process(msg)\n"
            "class N:\n"
            "    def on_start(self):\n"
            "        self.create_subscription('t', object, _Handler(self))\n"
        )
        assert lint_source(tmp_path, source) == []

    def test_bound_method_clean(self, tmp_path):
        source = (
            "class N:\n"
            "    def on_start(self):\n"
            "        self.create_subscription('t', object, self._on_msg)\n"
            "    def _on_msg(self, msg):\n"
            "        return msg\n"
        )
        assert lint_source(tmp_path, source) == []

    def test_outside_fork_reachable_modules_exempt(self, tmp_path):
        source = (
            "class N:\n"
            "    def on_start(self):\n"
            "        self.create_timer(1.0, lambda: None)\n"
        )
        findings = lint_source(
            tmp_path, source, module_rel="repro/analysis/fixture.py"
        )
        assert findings == []


# --------------------------------------------------------------------- RL004
class TestOrderSensitiveAccumulation:
    MODULE = "repro/analysis/fixture.py"

    def test_sum_over_dict_values(self, tmp_path):
        source = "def f(d):\n    return sum(d.values())\n"
        assert codes(lint_source(tmp_path, source, module_rel=self.MODULE)) == ["RL004"]

    def test_augassign_in_loop_over_items(self, tmp_path):
        source = (
            "def f(d):\n"
            "    acc = 0.0\n"
            "    for _, v in d.items():\n"
            "        acc += v\n"
            "    return acc\n"
        )
        assert codes(lint_source(tmp_path, source, module_rel=self.MODULE)) == ["RL004"]

    def test_sorted_neutralizes(self, tmp_path):
        source = (
            "def f(d):\n"
            "    acc = 0.0\n"
            "    for _, v in sorted(d.items()):\n"
            "        acc += v\n"
            "    return acc + sum(sorted(d.values()))\n"
        )
        assert lint_source(tmp_path, source, module_rel=self.MODULE) == []

    def test_sum_over_plain_list_clean(self, tmp_path):
        source = "def f(values):\n    return sum(values)\n"
        assert lint_source(tmp_path, source, module_rel=self.MODULE) == []

    def test_qof_in_scope_pipeline_not(self, tmp_path):
        source = "def f(d):\n    return sum(d.values())\n"
        assert codes(lint_source(tmp_path, source, module_rel="repro/core/qof.py")) == ["RL004"]
        assert lint_source(tmp_path, source, module_rel="repro/pipeline/fixture.py") == []


# --------------------------------------------------------------------- RL005
class TestIterationOrderHazard:
    def test_set_iteration(self, tmp_path):
        source = "for name in {'a', 'b'}:\n    print(name)\n"
        assert codes(lint_source(tmp_path, source)) == ["RL005"]

    def test_rng_choice_over_dict_keys(self, tmp_path):
        source = (
            "def pick(rng, d):\n"
            "    return rng.choice(list(d.keys()))\n"
        )
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RL005"]
        assert "choice" in findings[0].message

    def test_rng_choice_over_sorted_clean(self, tmp_path):
        source = (
            "def pick(rng, d):\n"
            "    return rng.choice(sorted(d.keys()))\n"
        )
        assert lint_source(tmp_path, source) == []

    def test_json_dumps_without_sort_keys(self, tmp_path):
        source = "import json\ndef f(d):\n    return json.dumps(d)\n"
        assert codes(lint_source(tmp_path, source)) == ["RL005"]

    def test_json_dumps_with_sort_keys_clean(self, tmp_path):
        source = "import json\ndef f(d):\n    return json.dumps(d, sort_keys=True)\n"
        assert lint_source(tmp_path, source) == []

    def test_sorted_set_iteration_clean(self, tmp_path):
        source = "for name in sorted({'a', 'b'}):\n    print(name)\n"
        assert lint_source(tmp_path, source) == []


# --------------------------------------------------------------------- RL006
class TestUnregisteredEnvKnob:
    def test_direct_environ_get(self, tmp_path):
        source = "import os\nflag = os.environ.get('REPRO_NO_CACHE')\n"
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RL006"]
        assert "repro.core.knobs" in findings[0].message

    def test_direct_getenv_and_subscript(self, tmp_path):
        source = (
            "import os\n"
            "a = os.getenv('MAVFI_WORKERS')\n"
            "b = os.environ['MAVFI_RUNS']\n"
            "c = 'MAVFI_OVERSUBSCRIBE' in os.environ\n"
        )
        assert codes(lint_source(tmp_path, source)) == ["RL006", "RL006", "RL006"]

    def test_applies_to_tests_and_benchmarks(self, tmp_path):
        source = "import os\nos.environ['REPRO_NO_CACHE'] = '1'\n"
        (tmp_path / "pyproject.toml").touch()
        (tmp_path / "tests").mkdir(exist_ok=True)
        path = tmp_path / "tests" / "test_fixture.py"
        path.write_text(source)
        findings = lint_file(path, tmp_path, resolve_checkers())
        assert codes(findings) == ["RL006"]

    def test_unregistered_knob_through_knobs_api(self, tmp_path):
        source = (
            "from repro.core import knobs\n"
            "value = knobs.flag('REPRO_NOT_A_KNOB')\n"
        )
        findings = lint_source(tmp_path, source)
        assert codes(findings) == ["RL006"]
        assert "not declared" in findings[0].message

    def test_registered_knob_through_knobs_api_clean(self, tmp_path):
        source = (
            "from repro.core import knobs\n"
            "value = knobs.flag('REPRO_NO_CACHE')\n"
            "scale = knobs.value('MAVFI_RUNS')\n"
        )
        assert lint_source(tmp_path, source) == []

    def test_non_knob_env_reads_clean(self, tmp_path):
        source = "import os\nci = os.environ.get('CI')\nhome = os.getenv('HOME')\n"
        assert lint_source(tmp_path, source) == []

    def test_knobs_module_itself_exempt(self, tmp_path):
        source = "import os\nraw = os.environ.get('REPRO_NO_CACHE')\n"
        findings = lint_source(tmp_path, source, module_rel="repro/core/knobs.py")
        assert findings == []


# --------------------------------------------------------------------- RL007
class TestSwallowedException:
    def test_bare_except_fires(self, tmp_path):
        source = (
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except:\n"
            "        handle()\n"
        )
        findings = lint_source(tmp_path, source, module_rel="repro/core/fixture.py")
        assert codes(findings) == ["RL007"]
        assert "bare" in findings[0].message

    def test_silent_broad_except_fires(self, tmp_path):
        source = (
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert codes(
            lint_source(tmp_path, source, module_rel="repro/rosmw/fixture.py")
        ) == ["RL007"]

    def test_silent_broad_tuple_and_continue_fire(self, tmp_path):
        source = (
            "def f(items):\n"
            "    for item in items:\n"
            "        try:\n"
            "            risky(item)\n"
            "        except (ValueError, Exception):\n"
            "            continue\n"
        )
        assert codes(lint_source(tmp_path, source)) == ["RL007"]

    def test_typed_and_handled_excepts_clean(self, tmp_path):
        source = (
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except OSError:\n"
            "        pass\n"
            "    try:\n"
            "        risky()\n"
            "    except Exception as exc:\n"
            "        record(exc)\n"
            "        raise\n"
        )
        assert lint_source(tmp_path, source, module_rel="repro/core/fixture.py") == []

    def test_out_of_scope_module_exempt(self, tmp_path):
        source = (
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        findings = lint_source(
            tmp_path, source, module_rel="repro/analysis/fixture.py"
        )
        assert findings == []

    def test_pragma_excuses_deliberate_capture(self, tmp_path):
        source = (
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    # repro-lint: disable=RL007 deliberate broad capture for the test\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert lint_source(tmp_path, source, module_rel="repro/core/fixture.py") == []


# ------------------------------------------------------------------ registry
def test_checker_catalog_is_complete():
    from repro.lint.checkers import ALL_CHECKERS, CHECKERS_BY_CODE, PROJECT_CHECKERS

    assert [c.code for c in ALL_CHECKERS] == [
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
    ]
    assert [c.code for c in PROJECT_CHECKERS] == [
        "RL008", "RL009", "RL010", "RL011", "RL012",
    ]
    for checker_cls in [*ALL_CHECKERS, *PROJECT_CHECKERS]:
        assert checker_cls.description
        assert CHECKERS_BY_CODE[checker_cls.code] is checker_cls


@pytest.mark.parametrize("select", [["RL001"], ["RL003", "RL005"]])
def test_select_restricts_checkers(tmp_path, select):
    source = (
        "import json, random\n"
        "class N:\n"
        "    def on_start(self):\n"
        "        self.create_timer(1.0, lambda: None)\n"
        "x = random.random()\n"
        "s = json.dumps({})\n"
    )
    findings = lint_source(tmp_path, source, select=select)
    assert set(codes(findings)) <= set(select)
    assert findings
