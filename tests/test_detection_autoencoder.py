"""Tests for the autoencoder network and the AAD detector."""

import numpy as np
import pytest

from repro.detection.autoencoder import AadDetector, Autoencoder, AutoencoderConfig
from repro.pipeline.states import MONITORED_FEATURES


def _synthetic_normal_vectors(n=600, seed=0):
    """Correlated 'normal' feature vectors (13-dimensional)."""
    rng = np.random.default_rng(seed)
    base = rng.normal(0.0, 1.0, size=(n, 3))
    mixing = rng.normal(0.0, 1.0, size=(3, len(MONITORED_FEATURES)))
    return base @ mixing + rng.normal(0.0, 0.1, size=(n, len(MONITORED_FEATURES)))


class TestAutoencoderNetwork:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoencoderConfig(layer_sizes=(13, 6))
        with pytest.raises(ValueError):
            AutoencoderConfig(layer_sizes=(13, 6, 12))

    def test_paper_architecture_default(self):
        config = AutoencoderConfig()
        assert config.layer_sizes == (13, 6, 3, 13)

    def test_forward_shapes(self):
        net = Autoencoder(AutoencoderConfig(layer_sizes=(13, 6, 3, 13)))
        single = net.forward(np.zeros(13))
        batch = net.forward(np.zeros((5, 13)))
        assert single.shape == (13,)
        assert batch.shape == (5, 13)

    def test_training_reduces_loss(self):
        data = _synthetic_normal_vectors()
        net = Autoencoder(AutoencoderConfig(layer_sizes=(13, 6, 3, 13), epochs=25, seed=1))
        losses = net.train(data)
        assert losses[-1] < losses[0] * 0.7

    def test_training_shape_validation(self):
        net = Autoencoder()
        with pytest.raises(ValueError):
            net.train(np.zeros((10, 7)))

    def test_reconstruction_error_lower_for_normal_data(self):
        data = _synthetic_normal_vectors()
        net = Autoencoder(AutoencoderConfig(layer_sizes=(13, 6, 3, 13), epochs=30, seed=1))
        net.train(data)
        normal_error = float(net.reconstruction_error(data).mean())
        anomaly = np.full((1, 13), 50.0)
        anomaly_error = float(net.reconstruction_error(anomaly)[0])
        assert anomaly_error > normal_error * 10

    def test_state_dict_round_trip(self):
        net = Autoencoder(AutoencoderConfig(layer_sizes=(13, 6, 3, 13), epochs=2))
        net.train(_synthetic_normal_vectors(n=100))
        clone = Autoencoder(AutoencoderConfig(layer_sizes=(13, 6, 3, 13)))
        clone.load_state_dict(net.state_dict())
        x = np.ones((3, 13))
        assert np.allclose(net.forward(x), clone.forward(x))

    def test_deterministic_given_seed(self):
        data = _synthetic_normal_vectors(n=200)
        a = Autoencoder(AutoencoderConfig(epochs=3, seed=5))
        b = Autoencoder(AutoencoderConfig(epochs=3, seed=5))
        a.train(data)
        b.train(data)
        assert np.allclose(a.weights[0], b.weights[0])


class TestAadDetector:
    def test_fit_sets_threshold_above_training_errors(self, synthetic_training_deltas):
        detector = AadDetector()
        detector.fit(synthetic_training_deltas)
        assert np.isfinite(detector.threshold)
        assert detector.threshold > 0

    def test_normal_sample_not_flagged(self, trained_aad):
        anomalous, error = trained_aad.check_sample({"waypoint_x": 1.0, "command_vx": 0.5})
        assert not anomalous
        assert error <= trained_aad.threshold

    def test_extreme_sample_flagged(self, trained_aad):
        anomalous, error = trained_aad.check_sample({"waypoint_x": 900.0})
        assert anomalous
        assert error > trained_aad.threshold

    def test_alarm_counting_and_reset(self, trained_aad):
        trained_aad.reset_state()
        trained_aad.check_sample({"waypoint_x": 900.0})
        assert trained_aad.alarm_count == 1
        trained_aad.reset_state()
        assert trained_aad.alarm_count == 0

    def test_latest_deltas_cleared_after_alarm(self, trained_aad):
        trained_aad.reset_state()
        trained_aad.check_sample({"waypoint_x": 900.0})
        # The anomalous delta must not linger and poison the next check.
        anomalous, _ = trained_aad.check_sample({"command_vx": 0.5})
        assert not anomalous
        trained_aad.reset_state()

    def test_partial_samples_use_latest_values(self, trained_aad):
        trained_aad.reset_state()
        ok, _ = trained_aad.check_sample({"time_to_collision": 1.0})
        assert not ok
        trained_aad.reset_state()

    def test_fit_requires_data(self):
        detector = AadDetector()
        with pytest.raises(ValueError):
            detector.fit({name: [] for name in MONITORED_FEATURES})

    def test_save_load_round_trip(self, trained_aad, tmp_path):
        path = tmp_path / "aad.json"
        trained_aad.save(path)
        loaded = AadDetector.load(path)
        assert loaded.threshold == pytest.approx(trained_aad.threshold)
        sample = {"waypoint_x": 900.0}
        assert loaded.check_sample(sample)[0] == trained_aad.check_sample(sample)[0]
        trained_aad.reset_state()

    def test_assemble_vectors_from_deltas(self, synthetic_training_deltas):
        detector = AadDetector()
        vectors = detector._assemble_vectors(synthetic_training_deltas)
        assert vectors.shape[1] == len(MONITORED_FEATURES)
        assert vectors.shape[0] > 0
