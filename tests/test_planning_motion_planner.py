"""Tests for the motion planner node (replanning triggers, recompute, faults)."""

import numpy as np
import pytest

from repro import topics
from repro.planning.motion_planner import MotionPlannerNode, PlannerConfig
from repro.rosmw.graph import NodeGraph
from repro.rosmw.message import (
    CollisionCheckMsg,
    MissionStatusMsg,
    MultiDOFTrajectoryMsg,
    OccupancyMapMsg,
    OdometryMsg,
)


def _planner_graph(**config_kwargs):
    graph = NodeGraph()
    config = PlannerConfig(planner_name="rrt_star", decision_rate=2.0, **config_kwargs)
    node = MotionPlannerNode(config=config)
    graph.add_node(node)
    graph.start_all()
    return graph, node


def _feed_basics(graph, position=(0.0, 0.0, 2.0), goal=(40.0, 0.0, 2.0)):
    graph.topic_bus.publish(
        topics.ODOMETRY, OdometryMsg(position=np.asarray(position, float))
    )
    graph.topic_bus.publish(
        topics.MISSION_STATUS, MissionStatusMsg(goal=np.asarray(goal, float))
    )


class TestReplanTriggers:
    def test_plans_when_goal_and_odometry_known(self):
        graph, node = _planner_graph()
        _feed_basics(graph)
        graph.spin_until(1.0)
        trajectory = graph.topic_bus.last_message(topics.TRAJECTORY)
        assert trajectory is not None
        assert len(trajectory.waypoints) > 2
        assert node.replan_count == 1

    def test_does_not_plan_without_goal(self):
        graph, node = _planner_graph()
        graph.topic_bus.publish(topics.ODOMETRY, OdometryMsg(position=np.zeros(3)))
        graph.spin_until(2.0)
        assert node.replan_count == 0

    def test_does_not_replan_without_reason(self):
        graph, node = _planner_graph()
        _feed_basics(graph)
        graph.spin_until(4.0)
        assert node.replan_count == 1

    def test_replans_on_low_time_to_collision(self):
        graph, node = _planner_graph(min_replan_interval=0.5)
        _feed_basics(graph)
        graph.spin_until(1.0)
        graph.topic_bus.publish(
            topics.COLLISION_CHECK, CollisionCheckMsg(time_to_collision=1.0)
        )
        graph.spin_until(2.5)
        assert node.replan_count >= 2

    def test_replans_on_new_future_collision(self):
        graph, node = _planner_graph(min_replan_interval=0.5)
        _feed_basics(graph)
        graph.spin_until(1.0)
        graph.topic_bus.publish(
            topics.COLLISION_CHECK,
            CollisionCheckMsg(time_to_collision=float("inf"), future_collision_seq=1),
        )
        graph.spin_until(2.5)
        assert node.replan_count >= 2

    def test_replans_when_vehicle_deviates_from_trajectory(self):
        graph, node = _planner_graph(min_replan_interval=0.5, deviation_replan_threshold=3.0)
        _feed_basics(graph)
        graph.spin_until(1.0)
        # Teleport the vehicle far off the planned path.
        graph.topic_bus.publish(
            topics.ODOMETRY, OdometryMsg(position=np.array([5.0, 20.0, 2.0]))
        )
        graph.spin_until(2.5)
        assert node.replan_count >= 2

    def test_replans_when_stalled(self):
        graph, node = _planner_graph(
            min_replan_interval=0.5,
            progress_watchdog_window=2.0,
            progress_watchdog_distance=1.0,
        )
        _feed_basics(graph)
        graph.spin_until(1.0)
        # Vehicle never moves: the watchdog must force a replan.
        for t in np.arange(1.5, 7.0, 0.5):
            graph.topic_bus.publish(
                topics.ODOMETRY, OdometryMsg(position=np.array([0.0, 0.0, 2.0]))
            )
            graph.spin_until(t)
        assert node.replan_count >= 2

    def test_no_replan_after_mission_completed(self):
        graph, node = _planner_graph()
        _feed_basics(graph)
        graph.spin_until(1.0)
        graph.topic_bus.publish(
            topics.MISSION_STATUS,
            MissionStatusMsg(goal=np.array([40.0, 0, 2.0]), completed=True),
        )
        graph.topic_bus.publish(
            topics.COLLISION_CHECK, CollisionCheckMsg(time_to_collision=0.5)
        )
        graph.spin_until(4.0)
        assert node.replan_count == 1


class TestRecomputeAndFaults:
    def test_recompute_republishes_identical_trajectory(self):
        graph, node = _planner_graph()
        _feed_basics(graph)
        graph.spin_until(1.0)
        before = graph.topic_bus.last_message(topics.TRAJECTORY)
        assert node.recompute()
        after = graph.topic_bus.last_message(topics.TRAJECTORY)
        assert len(before.waypoints) == len(after.waypoints)
        for a, b in zip(before.waypoints, after.waypoints):
            assert a.x == pytest.approx(b.x)
            assert a.y == pytest.approx(b.y)
            assert a.z == pytest.approx(b.z)

    def test_recompute_does_not_change_future_seeds(self):
        graph, node = _planner_graph()
        _feed_basics(graph)
        graph.spin_until(1.0)
        count_before = node.replan_count
        node.recompute()
        assert node.replan_count == count_before

    def test_corrupt_internal_corrupts_and_republishes(self):
        graph, node = _planner_graph()
        _feed_basics(graph)
        graph.spin_until(1.0)
        publishes_before = graph.topic_bus.publish_count(topics.TRAJECTORY)
        description = node.corrupt_internal(np.random.default_rng(0), bit=63)
        assert "trajectory" in description
        assert graph.topic_bus.publish_count(topics.TRAJECTORY) == publishes_before + 1

    def test_corrupt_internal_before_any_plan_arms_output_fault(self):
        graph, node = _planner_graph()
        description = node.corrupt_internal(np.random.default_rng(0), bit=10)
        assert node.has_pending_fault
        assert "pending" in description

    def test_corruption_does_not_leak_into_other_nodes_copies(self):
        graph, node = _planner_graph()
        received = []
        graph.topic_bus.subscribe(topics.TRAJECTORY, MultiDOFTrajectoryMsg, received.append)
        _feed_basics(graph)
        graph.spin_until(1.0)
        original = received[0]
        original_x = [w.x for w in original.waypoints]
        node.corrupt_internal(np.random.default_rng(1), bit=63)
        # The first (clean) message previously delivered must be untouched.
        assert [w.x for w in original.waypoints] == original_x

    def test_reset_kernel(self):
        graph, node = _planner_graph()
        _feed_basics(graph)
        graph.spin_until(1.0)
        node.reset_kernel()
        assert node.replan_count == 0
        assert node._current_trajectory is None

    def test_failed_plan_counted(self):
        # An occupied goal region cannot be reached: planning fails.
        graph, node = _planner_graph(max_iterations=60)
        centers = [
            [40.0 + dx, dy, 2.0 + dz]
            for dx in np.arange(-4, 4.5, 1.0)
            for dy in np.arange(-4, 4.5, 1.0)
            for dz in np.arange(-1.5, 2.0, 1.0)
        ]
        graph.topic_bus.publish(
            topics.OCCUPANCY_MAP,
            OccupancyMapMsg(resolution=1.0, occupied_centers=np.array(centers)),
        )
        _feed_basics(graph, goal=(40.0, 0.0, 2.0))
        graph.spin_until(1.0)
        assert node.failed_plan_count >= 1
