"""Tests for the campaign resilience engine.

Failure capture, deterministic retry, hang quarantine, pool self-healing and
the chaos harness -- including the headline invariant: a chaos-ridden
campaign converges to the same surviving records as a clean run, serial and
parallel alike.
"""

from __future__ import annotations

import json

import pytest

from repro.core import knobs
from repro.core.campaign import Campaign, CampaignConfig, RunSetting
from repro.core.executor import (
    ParallelExecutor,
    RunSpec,
    SerialExecutor,
    execute_spec,
    execute_specs,
)
from repro.core.resilience import (
    OUTCOME_FAILED,
    OUTCOME_QUARANTINED,
    OUTCOME_RETRIED,
    ChaosMissionError,
    ChaosSchedule,
    FailureRecord,
    ResiliencePolicy,
    failure_from_exception,
    hang_failure,
    run_spec_resilient,
)
from repro.core.results import JsonlResultStore, mission_result_to_dict


def _fast_campaign(**overrides) -> Campaign:
    config = CampaignConfig(
        environment="farm",
        num_golden=overrides.pop("num_golden", 4),
        num_injections_per_stage=overrides.pop("num_injections_per_stage", 2),
        mission_time_limit=60.0,
        **overrides,
    )
    return Campaign(config)


def _specs(campaign: Campaign):
    return campaign.golden_specs() + campaign.stage_injection_specs(
        RunSetting.INJECTION
    )


def _result_dicts(store: JsonlResultStore):
    return {
        key: mission_result_to_dict(result)
        for key, result in store.load_results().items()
    }


# ------------------------------------------------------------ failure records
class TestFailureRecord:
    def test_round_trip_and_identity(self):
        spec = _fast_campaign().golden_specs()[0]
        try:
            raise ValueError("boom")
        except ValueError as exc:
            record = failure_from_exception(spec, exc, attempt=1, outcome=OUTCOME_RETRIED)
        assert record.spec_key == spec.key()
        assert record.error_type == "ValueError"
        assert record.attempt == 1
        assert len(record.traceback_digest) == 16
        clone = FailureRecord.from_dict(record.to_dict())
        assert clone == record
        assert clone.identity() == record.identity()

    def test_digest_is_deterministic_across_processes(self):
        # The digest must not include memory addresses or absolute paths.
        spec = _fast_campaign().golden_specs()[0]

        def capture():
            try:
                raise ValueError("boom")
            except ValueError as exc:
                return failure_from_exception(spec, exc, 0, OUTCOME_RETRIED)

        assert capture().traceback_digest == capture().traceback_digest

    def test_hang_failure_shape(self):
        spec = _fast_campaign().golden_specs()[0]
        record = hang_failure(spec, strike=2, outcome=OUTCOME_QUARANTINED)
        assert record.error_type == "HangTimeout"
        assert record.outcome == OUTCOME_QUARANTINED
        assert record.attempt == 2


class TestResiliencePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(max_attempts=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(task_timeout=-1.0)
        with pytest.raises(ValueError):
            ResiliencePolicy(quarantine_strikes=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(max_pool_respawns=-1)

    def test_from_knobs_defaults_and_overrides(self):
        assert ResiliencePolicy.from_knobs() == ResiliencePolicy()
        with knobs.temporary(
            {
                "REPRO_MAX_ATTEMPTS": "5",
                "REPRO_TASK_TIMEOUT": "2.5",
                "REPRO_QUARANTINE_STRIKES": "1",
                "REPRO_POOL_RESPAWNS": "0",
            }
        ):
            policy = ResiliencePolicy.from_knobs()
        assert policy.max_attempts == 5
        assert policy.task_timeout == 2.5
        assert policy.quarantine_strikes == 1
        # A zero respawn budget is a valid setting, not "use the default".
        assert policy.max_pool_respawns == 0


# ------------------------------------------------------------- chaos schedule
class TestChaosSchedule:
    def test_from_knobs_unset_is_none(self):
        with knobs.temporary({"REPRO_CHAOS": None}):
            assert ChaosSchedule.from_knobs() is None

    def test_from_knobs_parses_rates(self):
        with knobs.temporary(
            {"REPRO_CHAOS": "raise=0.5,crash=0.25", "REPRO_CHAOS_SEED": "9"}
        ):
            schedule = ChaosSchedule.from_knobs()
        assert schedule == ChaosSchedule(
            raise_rate=0.5, crash_rate=0.25, seed=9
        )

    def test_decisions_are_deterministic(self):
        a = ChaosSchedule(raise_rate=0.5, crash_rate=0.5, hang_rate=0.5, seed=3)
        b = ChaosSchedule(raise_rate=0.5, crash_rate=0.5, hang_rate=0.5, seed=3)
        for key in ("k1", "k2", "k3"):
            for attempt in range(3):
                assert a.mission_raises(key, attempt) == b.mission_raises(key, attempt)
                assert a.crashes(key, attempt) == b.crashes(key, attempt)
            assert a.hangs(key) == b.hangs(key)

    def test_hang_is_attempt_independent_and_kinds_disjoint(self):
        schedule = ChaosSchedule(raise_rate=0.5, crash_rate=0.5, hang_rate=0.5, seed=0)
        keys = [f"key-{i}" for i in range(64)]
        raises = {k for k in keys if schedule.mission_raises(k, 0)}
        crashes = {k for k in keys if schedule.crashes(k, 0)}
        assert raises and crashes and raises != crashes
        hangs = {k for k in keys if schedule.hangs(k)}
        assert hangs

    def test_shard_action_rates(self):
        schedule = ChaosSchedule(torn_rate=1.0, seed=0)
        assert schedule.shard_action("any") == "torn"
        schedule = ChaosSchedule(garbage_rate=1.0, seed=0)
        assert schedule.shard_action("any") == "garbage"
        assert ChaosSchedule(seed=0).shard_action("any") is None


# ------------------------------------------------------- store failure lines
class TestStoreFailures:
    def test_append_and_load_failures(self, tmp_path):
        store = JsonlResultStore(tmp_path / "r.jsonl")
        payload = {"spec_key": "abc", "error_type": "ValueError", "outcome": "failed"}
        store.append_failure("abc", payload, meta={"setting": "golden"})
        failures = store.load_failures()
        assert len(failures) == 1
        assert failures[0]["failure"] == payload
        assert failures[0]["meta"] == {"setting": "golden"}
        # Failure lines are invisible to the mission-facing API.
        assert len(store) == 0
        assert store.completed_keys() == set()
        assert store.load_results() == {}

    def test_shard_health_distinguishes_torn_from_corrupt(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = JsonlResultStore(path)
        campaign = _fast_campaign()
        spec_a, spec_b = _specs(campaign)[:2]
        store.append(spec_a.key(), execute_spec(spec_a))
        # Mid-file garbage (a newline-terminated undecodable line) is real
        # corruption...
        store.append_junk("garbage")
        store.append(spec_b.key(), execute_spec(spec_b))
        # ...while an unterminated tail is just a torn final write.
        store.append_junk("torn")
        health = JsonlResultStore(path).shard_health()
        assert health.intact == 2
        assert health.corrupt == 1
        assert health.torn == 1
        assert not health.is_clean
        # Both intact records still load; junk never aliases a key.
        assert set(JsonlResultStore(path).completed_keys()) == {
            spec_a.key(), spec_b.key(),
        }

    def test_clean_shard_health(self, tmp_path):
        store = JsonlResultStore(tmp_path / "r.jsonl")
        campaign = _fast_campaign()
        spec = _specs(campaign)[0]
        store.append(spec.key(), execute_spec(spec))
        store.append_failure(spec.key(), {"error_type": "X"})
        health = store.shard_health()
        assert health.intact == 1
        assert health.failures == 1
        assert health.torn == 0 and health.corrupt == 0
        assert health.is_clean

    def test_kill_mid_write_resume_loses_nothing(self, tmp_path):
        path = tmp_path / "r.jsonl"
        campaign = _fast_campaign()
        specs = _specs(campaign)
        store = JsonlResultStore(path)
        half = specs[: len(specs) // 2]
        execute_specs(half, store=store)
        store.append_junk("torn")  # the simulated kill-mid-write

        resumed = JsonlResultStore(path)
        before_keys = set(resumed.completed_keys())
        assert before_keys == {spec.key() for spec in half}
        execute_specs(specs, store=resumed)
        final = JsonlResultStore(path)
        keys = [record["key"] for record in final.load_records() if "result" in record]
        # Zero lost and zero duplicated: every spec exactly once.
        assert sorted(keys) == sorted({spec.key() for spec in specs})


# --------------------------------------------------------- serial resilience
class TestSerialResilience:
    def test_retried_spec_is_bit_identical(self):
        campaign = _fast_campaign()
        specs = _specs(campaign)
        clean = [mission_result_to_dict(execute_spec(spec)) for spec in specs]
        # raise_rate=0.4: some specs fail attempt 0 and are retried.
        schedule = ChaosSchedule(raise_rate=0.4, seed=11)
        policy = ResiliencePolicy(max_attempts=4)
        failures = []
        retried = 0
        for spec, clean_dict in zip(specs, clean):
            result = run_spec_resilient(
                spec, None, policy, schedule, failures.append
            )
            assert result is not None
            if any(f.spec_key == spec.key() for f in failures):
                retried += 1
            assert mission_result_to_dict(result) == clean_dict
        assert retried > 0, "chaos schedule never fired; test is vacuous"
        assert all(f.error_type == "ChaosMissionError" for f in failures)

    def test_attempt_exhaustion_yields_failed_record(self):
        campaign = _fast_campaign()
        spec = _specs(campaign)[0]
        schedule = ChaosSchedule(raise_rate=1.0, seed=0)
        policy = ResiliencePolicy(max_attempts=3)
        failures = []
        result = run_spec_resilient(spec, None, policy, schedule, failures.append)
        assert result is None
        assert [f.outcome for f in failures] == [
            OUTCOME_RETRIED, OUTCOME_RETRIED, OUTCOME_FAILED,
        ]
        assert [f.attempt for f in failures] == [1, 2, 3]  # 1-based attempts

    def test_hang_quarantine_ladder(self):
        campaign = _fast_campaign()
        spec = _specs(campaign)[0]
        schedule = ChaosSchedule(hang_rate=1.0, seed=0)
        policy = ResiliencePolicy(quarantine_strikes=3)
        failures = []
        result = run_spec_resilient(spec, None, policy, schedule, failures.append)
        assert result is None
        assert [f.outcome for f in failures] == [
            OUTCOME_RETRIED, OUTCOME_RETRIED, OUTCOME_QUARANTINED,
        ]
        assert all(f.error_type == "HangTimeout" for f in failures)

    def test_real_exception_is_captured_not_raised(self):
        campaign = _fast_campaign()
        spec = _specs(campaign)[0]
        policy = ResiliencePolicy(max_attempts=1)
        failures = []

        class ExplodingDetectors(dict):
            def get(self, *args, **kwargs):  # pragma: no cover - trivial
                raise RuntimeError("detector blew up")

        # Without a policy the exception propagates (legacy behaviour is the
        # contract for policy=None callers); with one it becomes a record.
        result = run_spec_resilient(
            spec, ExplodingDetectors(), policy, None, failures.append
        )
        if failures:
            assert result is None
            assert failures[0].outcome == OUTCOME_FAILED
        else:
            # The detector mapping was never consulted for this spec; the
            # mission simply succeeded. Still a valid capture path.
            assert result is not None


# -------------------------------------------------------- chaos convergence
CHAOS_ENV = {
    "REPRO_CHAOS": "raise=0.4,crash=0.2,hang=0.15",
    "REPRO_CHAOS_SEED": "11",
}


class TestChaosConvergence:
    def test_serial_and_parallel_converge_to_clean(self, tmp_path):
        campaign = _fast_campaign()
        specs = _specs(campaign)
        clean = {
            spec.key(): mission_result_to_dict(execute_spec(spec))
            for spec in specs
        }
        policy = ResiliencePolicy(
            max_attempts=3, task_timeout=1.5, quarantine_strikes=2,
            max_pool_respawns=8,
        )
        with knobs.temporary(CHAOS_ENV):
            schedule = ChaosSchedule.from_knobs()
            hang_keys = {spec.key() for spec in specs if schedule.hangs(spec.key())}

            serial_failures = []
            serial_store = JsonlResultStore(tmp_path / "serial.jsonl")
            execute_specs(
                specs, executor=SerialExecutor(), store=serial_store,
                policy=policy, on_failure=serial_failures.append,
            )
            parallel_failures = []
            parallel_store = JsonlResultStore(tmp_path / "parallel.jsonl")
            execute_specs(
                specs, executor=ParallelExecutor(workers=2), store=parallel_store,
                policy=policy, on_failure=parallel_failures.append,
            )

        assert hang_keys, "chaos seed produced no hangs; test is vacuous"
        serial_records = _result_dicts(serial_store)
        parallel_records = _result_dicts(parallel_store)
        # Byte-identical surviving records, serial vs parallel.
        assert json.dumps(serial_records, sort_keys=True) == json.dumps(
            parallel_records, sort_keys=True
        )
        # Identical failure-record sets (spec, attempt, type, digest).
        assert {f.identity() for f in serial_failures} == {
            f.identity() for f in parallel_failures
        }
        # Surviving records equal the clean run; the missing ones are exactly
        # the quarantined hangs plus attempt-exhausted specs.
        for key, record in serial_records.items():
            assert record == clean[key]
        lost = set(clean) - set(serial_records)
        exhausted = {
            f.spec_key for f in serial_failures if f.outcome == OUTCOME_FAILED
        }
        quarantined = {
            f.spec_key for f in serial_failures if f.outcome == OUTCOME_QUARANTINED
        }
        assert hang_keys == quarantined
        assert lost == exhausted | quarantined

    def test_crash_only_chaos_heals_the_pool(self, tmp_path):
        campaign = _fast_campaign()
        specs = _specs(campaign)
        policy = ResiliencePolicy(max_attempts=3, max_pool_respawns=8)
        failures = []
        store = JsonlResultStore(tmp_path / "r.jsonl")
        with knobs.temporary(
            {"REPRO_CHAOS": "crash=0.3", "REPRO_CHAOS_SEED": "5"}
        ):
            schedule = ChaosSchedule.from_knobs()
            crashing = [
                spec for spec in specs if schedule.crashes(spec.key(), 0)
            ]
            results = execute_specs(
                specs, executor=ParallelExecutor(workers=2), store=store,
                policy=policy, on_failure=failures.append,
            )
        assert crashing, "chaos seed produced no crashes; test is vacuous"
        assert any(f.error_type == "WorkerCrash" for f in failures)
        # Crashes are transient: every spec that survives the attempt budget
        # must still have a result, bit-identical to a clean run.
        clean = {spec.key(): mission_result_to_dict(execute_spec(spec)) for spec in specs}
        surviving = _result_dicts(store)
        for key, record in surviving.items():
            assert record == clean[key]
        exhausted = {f.spec_key for f in failures if f.outcome == OUTCOME_FAILED}
        assert set(clean) - set(surviving) == exhausted
        assert results.count(None) == len(exhausted)

    def test_degrades_to_serial_when_respawns_exhausted(self, tmp_path):
        campaign = _fast_campaign()
        specs = _specs(campaign)
        # Zero respawn budget: the first crash kills pooling entirely and the
        # rest of the batch must still complete in-process.
        policy = ResiliencePolicy(max_attempts=3, max_pool_respawns=0)
        failures = []
        store = JsonlResultStore(tmp_path / "r.jsonl")
        with knobs.temporary(
            {"REPRO_CHAOS": "crash=0.3", "REPRO_CHAOS_SEED": "5"}
        ):
            execute_specs(
                specs, executor=ParallelExecutor(workers=2), store=store,
                policy=policy, on_failure=failures.append,
            )
        clean = {spec.key(): mission_result_to_dict(execute_spec(spec)) for spec in specs}
        surviving = _result_dicts(store)
        exhausted = {f.spec_key for f in failures if f.outcome == OUTCOME_FAILED}
        assert set(clean) - set(surviving) == exhausted
        for key, record in surviving.items():
            assert record == clean[key]

    def test_chaos_shard_junk_survives_resume_and_report(self, tmp_path):
        campaign = _fast_campaign()
        specs = _specs(campaign)
        policy = ResiliencePolicy()
        store = JsonlResultStore(tmp_path / "r.jsonl")
        with knobs.temporary(
            {"REPRO_CHAOS": "torn=0.3,garbage=0.3", "REPRO_CHAOS_SEED": "2"}
        ):
            execute_specs(specs, store=store, policy=policy)
        health = JsonlResultStore(store.path).shard_health()
        assert health.torn + health.corrupt > 0, "no junk injected; vacuous"
        # Every mission record survives the junk around it.
        assert set(JsonlResultStore(store.path).completed_keys()) == {
            spec.key() for spec in specs
        }


# ------------------------------------------------------- executor telemetry
class TestExecutorTelemetry:
    def test_map_entry_resets_stale_stats(self):
        campaign = _fast_campaign()
        specs = _specs(campaign)
        executor = ParallelExecutor(workers=1)  # serial fallback path
        executor.map(specs[:2])
        assert executor.last_checkpoint_stats is not None
        assert executor.last_effective_workers == 1
        # A later misuse (unshippable custom detector) must not leave the
        # previous map()'s telemetry dangling.
        bad = RunSpec(
            config=campaign.config, setting="dr", seed=0,
            detector="custom-in-memory",
        )
        with pytest.raises(ValueError):
            executor.map([bad, bad])
        assert executor.last_checkpoint_stats is None
        assert executor.last_effective_workers == 0

    def test_empty_map_resets_stats(self):
        executor = ParallelExecutor(workers=2)
        executor.last_effective_workers = 99
        executor.map([])
        assert executor.last_effective_workers <= 1


# -------------------------------------------------------------- store policy
class TestExecuteSpecsFailurePersistence:
    def test_failure_records_land_in_store(self, tmp_path):
        campaign = _fast_campaign()
        specs = _specs(campaign)[:3]
        store = JsonlResultStore(tmp_path / "r.jsonl")
        policy = ResiliencePolicy(max_attempts=2)
        with knobs.temporary({"REPRO_CHAOS": "raise=1.0", "REPRO_CHAOS_SEED": "0"}):
            results = execute_specs(specs, store=store, policy=policy)
        assert results == [None, None, None]
        failures = store.load_failures()
        # Two attempts per spec, every one captured.
        assert len(failures) == 6
        for line in failures:
            payload = line["failure"]
            assert payload["error_type"] == "ChaosMissionError"
            assert payload["outcome"] in (OUTCOME_RETRIED, OUTCOME_FAILED)
            assert line["meta"]["setting"] == payload["setting"]
        # The loaded records round-trip into FailureRecord.
        records = [FailureRecord.from_dict(line["failure"]) for line in failures]
        assert len({r.identity() for r in records}) == 6

    def test_legacy_behaviour_without_policy(self, tmp_path):
        campaign = _fast_campaign()
        specs = _specs(campaign)[:2]
        store = JsonlResultStore(tmp_path / "r.jsonl")
        results = execute_specs(specs, store=store)
        assert all(result is not None for result in results)
        assert store.load_failures() == []

    def test_chaos_error_is_a_runtime_error(self):
        assert issubclass(ChaosMissionError, RuntimeError)
