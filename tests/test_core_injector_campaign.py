"""Tests for the fault injector node, QoF metrics and campaign management."""

import math

import pytest

from repro.core.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    RunSetting,
    runs_scale,
    scaled_count,
)
from repro.core.fault import BitField
from repro.core.injector import FaultInjectorNode, FaultPlan
from repro.core.qof import (
    QofMetrics,
    failure_recovery_rate,
    summarize_runs,
    worst_case_increase,
    worst_case_recovery,
)
from repro.core.results import distribution_stats, iqr_outlier_count, recovery_percentage
from repro.pipeline.builder import PipelineConfig, build_pipeline


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(target_type="nowhere")
        with pytest.raises(ValueError):
            FaultPlan(injection_time=0.0)

    def test_defaults(self):
        plan = FaultPlan()
        assert plan.target_type == "kernel"
        assert plan.bit_field == BitField.ANY


class TestFaultInjectorNode:
    def test_kernel_injection_fires_at_scheduled_time(self):
        handles = build_pipeline(PipelineConfig(environment="farm", seed=0))
        plan = FaultPlan(
            target_type="kernel", target="octomap_generation", injection_time=2.0, bit=40, seed=1
        )
        injector = FaultInjectorNode(plan, handles.kernels)
        handles.graph.add_node(injector)
        handles.graph.start_all()
        handles.graph.spin_until(1.0)
        assert not injector.injected
        handles.graph.spin_until(2.5)
        assert injector.injected
        assert "octomap" in injector.description

    def test_stage_injection_picks_kernel_of_stage(self):
        handles = build_pipeline(PipelineConfig(environment="farm", seed=0))
        plan = FaultPlan(target_type="stage", target="perception", injection_time=1.0, seed=2)
        injector = FaultInjectorNode(plan, handles.kernels)
        handles.graph.add_node(injector)
        handles.graph.start_all()
        handles.graph.spin_until(1.5)
        assert injector.injected
        assert any(
            name in injector.description
            for name in ("point_cloud", "octomap", "collision_check")
        )

    def test_unknown_kernel_target_is_reported(self):
        handles = build_pipeline(PipelineConfig(environment="farm", seed=0))
        plan = FaultPlan(target_type="kernel", target="nonexistent", injection_time=1.0)
        injector = FaultInjectorNode(plan, handles.kernels)
        handles.graph.add_node(injector)
        handles.graph.start_all()
        handles.graph.spin_until(1.5)
        assert "no kernel" in injector.description

    def test_state_injection_corrupts_live_message(self):
        handles = build_pipeline(PipelineConfig(environment="farm", seed=0))
        plan = FaultPlan(
            target_type="state", target="command_vx", injection_time=2.0, bit=63, seed=3
        )
        injector = FaultInjectorNode(plan, handles.kernels)
        handles.graph.add_node(injector)
        handles.graph.start_all()
        handles.graph.spin_until(3.0)
        assert injector.injected
        assert "command_vx" in injector.description

    def test_state_injection_arms_tap_when_no_message_yet(self, graph):
        injector = FaultInjectorNode(
            FaultPlan(target_type="state", target="waypoint_x", injection_time=1.0, bit=63),
            {},
        )
        graph.add_node(injector)
        graph.start_all()
        description = injector.inject()
        assert "armed" in description

    def test_injection_happens_once(self):
        handles = build_pipeline(PipelineConfig(environment="farm", seed=0))
        plan = FaultPlan(target_type="kernel", target="pid_control", injection_time=1.0, seed=4)
        injector = FaultInjectorNode(plan, handles.kernels)
        handles.graph.add_node(injector)
        handles.graph.start_all()
        handles.graph.spin_until(5.0)
        first = injector.description
        injector._fire()
        assert injector.description == first


class TestQofMetrics:
    def _fake_results(self, times, successes):
        results = []
        for time, success in zip(times, successes):
            results.append(
                type(
                    "R",
                    (),
                    {"flight_time": time, "success": success, "mission_energy": time * 100},
                )()
            )
        return results

    def test_summary_over_successful_runs(self):
        results = self._fake_results([10, 12, 50], [True, True, False])
        summary = summarize_runs(results)
        assert summary.num_runs == 3
        assert summary.num_success == 2
        assert summary.success_rate == pytest.approx(2 / 3)
        assert summary.worst_flight_time == 12
        assert summary.num_failures == 1

    def test_summary_all_runs(self):
        results = self._fake_results([10, 50], [True, False])
        summary = summarize_runs(results, successful_only=False)
        assert summary.worst_flight_time == 50

    def test_empty_summary(self):
        summary = summarize_runs([])
        assert summary.num_runs == 0
        assert summary.success_rate == 0.0
        assert not summary.fell_back_to_failures

    def test_all_failed_fallback_is_flagged(self):
        # Regression: with successful_only=True and zero successes the
        # statistics silently averaged *failed* runs; the summary must now
        # announce that fallback explicitly.
        results = self._fake_results([40, 60], [False, False])
        summary = summarize_runs(results)
        assert summary.num_success == 0
        assert summary.fell_back_to_failures
        assert summary.mean_flight_time == pytest.approx(50.0)

    def test_all_failed_nan_policy(self):
        import math

        results = self._fake_results([40, 60], [False, False])
        summary = summarize_runs(results, on_no_success="nan")
        assert not summary.fell_back_to_failures
        assert math.isnan(summary.mean_flight_time)
        assert math.isnan(summary.worst_flight_time)
        assert math.isnan(summary.mean_energy)
        assert summary.num_runs == 2

    def test_no_fallback_flag_when_successes_exist(self):
        results = self._fake_results([10, 50], [True, False])
        assert not summarize_runs(results).fell_back_to_failures
        # successful_only=False never falls back either: the failed runs are
        # included by request, not silently.
        all_runs = summarize_runs(
            self._fake_results([40, 60], [False, False]), successful_only=False
        )
        assert not all_runs.fell_back_to_failures
        assert all_runs.worst_flight_time == 60

    def test_invalid_no_success_policy_rejected(self):
        with pytest.raises(ValueError):
            summarize_runs([], on_no_success="explode")

    def test_worst_case_increase_and_recovery(self):
        golden = summarize_runs(self._fake_results([10, 11], [True, True]))
        faulty = summarize_runs(self._fake_results([10, 16], [True, True]))
        recovered = summarize_runs(self._fake_results([10, 12], [True, True]))
        assert worst_case_increase(golden, faulty) == pytest.approx(5 / 11)
        assert worst_case_recovery(golden, faulty, recovered) == pytest.approx(0.8)

    def test_failure_recovery_rate(self):
        golden = summarize_runs(self._fake_results([10] * 10, [True] * 10))
        faulty = summarize_runs(self._fake_results([10] * 10, [*[True] * 8, False, False]))
        recovered = summarize_runs(self._fake_results([10] * 10, [*[True] * 9, False]))
        assert failure_recovery_rate(golden, faulty, recovered) == pytest.approx(0.5)

    def test_failure_recovery_rate_no_induced_failures(self):
        golden = summarize_runs(self._fake_results([10], [True]))
        assert failure_recovery_rate(golden, golden, golden) == 1.0

    def test_qof_metrics_from_result(self):
        result = self._fake_results([12.5], [True])[0]
        metrics = QofMetrics.from_result(result)
        assert metrics.flight_time == 12.5
        assert metrics.success


class TestResultsHelpers:
    def test_distribution_stats(self):
        stats = distribution_stats([1, 2, 3, 4, 5])
        assert stats.median == 3
        assert stats.minimum == 1
        assert stats.maximum == 5
        assert stats.count == 5

    def test_distribution_stats_empty(self):
        stats = distribution_stats([])
        assert stats.count == 0
        # NaN (not 0.0) statistics: an empty sample must not masquerade as a
        # sample of genuinely zero flight times.
        assert all(
            math.isnan(v)
            for v in (stats.minimum, stats.median, stats.maximum, stats.mean)
        )

    def test_recovery_percentage(self):
        assert recovery_percentage(10, 20, 12) == pytest.approx(0.8)
        assert recovery_percentage(10, 10, 10) == 1.0

    def test_iqr_outliers(self):
        values = [*[10.0] * 20, 100.0]
        assert iqr_outlier_count(values) == 1
        assert iqr_outlier_count([1, 2]) == 0


class TestCampaign:
    def test_runs_scale_env_var(self, monkeypatch):
        monkeypatch.setenv("MAVFI_RUNS", "2.0")
        assert runs_scale() == 2.0
        assert scaled_count(10) == 20
        monkeypatch.delenv("MAVFI_RUNS")
        assert runs_scale() == 1.0

    def test_runs_scale_rejects_invalid_values(self, monkeypatch):
        for bad in ("garbage", "-1", "-0.5", "nan", "inf", "-inf"):
            monkeypatch.setenv("MAVFI_RUNS", bad)
            with pytest.raises(ValueError):
                runs_scale()
        # Tiny positive values are floored, not rejected.
        monkeypatch.setenv("MAVFI_RUNS", "0")
        assert runs_scale() == 0.01
        monkeypatch.setenv("MAVFI_RUNS", "0.001")
        assert runs_scale() == 0.01

    def test_runs_scale_caches_parsed_value(self, monkeypatch):
        monkeypatch.setenv("MAVFI_RUNS", "3.0")
        assert runs_scale() == 3.0
        # Same raw value: served from the cache (same parse, same result).
        assert runs_scale() == 3.0
        monkeypatch.setenv("MAVFI_RUNS", "4.0")
        assert runs_scale() == 4.0

    def test_campaign_result_bookkeeping(self):
        result = CampaignResult(config=CampaignConfig())
        fake = type("R", (), {"flight_time": 10.0, "success": True, "mission_energy": 1.0})()
        result.add("golden", fake)
        result.extend("golden", [fake])
        assert len(result.results("golden")) == 2
        assert result.success_rate("golden") == 1.0
        assert result.flight_times("golden") == [10.0, 10.0]
        assert result.settings() == ["golden"]

    def test_golden_runs(self, monkeypatch):
        monkeypatch.setenv("MAVFI_RUNS", "1.0")
        campaign = Campaign(CampaignConfig(environment="farm", num_golden=2))
        runs = campaign.run_golden(2)
        assert len(runs) == 2
        assert all(r.setting == RunSetting.GOLDEN for r in runs)
        assert all(r.success for r in runs)

    def test_stage_injections_share_seed_pool(self, monkeypatch):
        monkeypatch.setenv("MAVFI_RUNS", "1.0")
        campaign = Campaign(
            CampaignConfig(environment="farm", num_golden=2, num_injections_per_stage=1)
        )
        runs = campaign.run_stage_injections(RunSetting.INJECTION, count_per_stage=1)
        assert len(runs) == 3  # one per PPC stage
        assert {r.fault_target for r in runs} == {"perception", "planning", "control"}
        golden_seeds = {r.seed for r in campaign.run_golden(2)}
        assert {r.seed for r in runs}.issubset(golden_seeds)

    def test_dr_golden_specs_are_fault_free_with_detector(self, monkeypatch):
        monkeypatch.setenv("MAVFI_RUNS", "1.0")
        campaign = Campaign(CampaignConfig(environment="farm", num_golden=3))
        specs = campaign.dr_golden_specs("gaussian")
        assert len(specs) == 3
        assert all(s.setting == RunSetting.DR_GOLDEN_GAUSSIAN for s in specs)
        assert all(s.fault_plan is None for s in specs)
        assert all(s.detector == "gaussian" for s in specs)
        # Same mission seed pool as the golden runs (paired comparison).
        golden_seeds = {s.seed for s in campaign.golden_specs()}
        assert {s.seed for s in specs} == golden_seeds
        aad = campaign.dr_golden_specs("autoencoder", count=2)
        assert len(aad) == 2
        assert all(s.setting == RunSetting.DR_GOLDEN_AUTOENCODER for s in aad)
        with pytest.raises(ValueError, match="detector tag"):
            campaign.dr_golden_specs("custom")

    def test_kernel_injections_grouped_by_label(self, monkeypatch):
        monkeypatch.setenv("MAVFI_RUNS", "1.0")
        campaign = Campaign(CampaignConfig(environment="farm", num_golden=1))
        by_kernel = campaign.run_kernel_injections(
            [("OctoMap", "octomap_generation", "rrt_star")], count_per_kernel=1
        )
        assert list(by_kernel) == ["OctoMap"]
        assert by_kernel["OctoMap"][0].setting == "kernel:OctoMap"

    def test_state_injections(self, monkeypatch):
        monkeypatch.setenv("MAVFI_RUNS", "1.0")
        campaign = Campaign(CampaignConfig(environment="farm", num_golden=1))
        by_state = campaign.run_state_injections(["command_vx"], count_per_state=1)
        assert by_state["command_vx"][0].fault_target == "command_vx"

    def test_dr_run_attaches_detector(self, monkeypatch, trained_gad):
        monkeypatch.setenv("MAVFI_RUNS", "1.0")
        campaign = Campaign(CampaignConfig(environment="farm", num_golden=1), gad=trained_gad)
        plan = campaign._fault_plan("stage", "planning", 0)
        record = campaign.run_one(
            seed=0, setting=RunSetting.DR_GAUSSIAN, fault_plan=plan, detector=trained_gad
        )
        assert record.detection_checked_samples > 0
