"""Tests for the collision check kernel and the localization filter."""

import numpy as np
import pytest

from repro import topics
from repro.perception.collision_check import (
    CollisionCheckConfig,
    CollisionChecker,
    CollisionCheckNode,
)
from repro.perception.localization import ComplementaryFilter, StateEstimate
from repro.rosmw.graph import NodeGraph
from repro.rosmw.message import (
    MultiDOFTrajectoryMsg,
    OccupancyMapMsg,
    OdometryMsg,
    Waypoint,
)


def _wall_centers(x=10.0):
    """Occupied voxel centres forming a wall at the given x."""
    ys = np.arange(-3.0, 3.5, 1.0)
    zs = np.arange(0.5, 5.5, 1.0)
    return np.array([[x, y, z] for y in ys for z in zs])


class TestCollisionChecker:
    def test_no_map_reports_infinite_ttc(self):
        checker = CollisionChecker()
        msg = checker.compute(np.zeros(3), np.array([3.0, 0, 0]))
        assert np.isinf(msg.time_to_collision)
        assert msg.future_collision_seq == 0

    def test_time_to_collision_towards_wall(self):
        checker = CollisionChecker()
        checker.update_map(_wall_centers(x=10.0), resolution=1.0)
        msg = checker.compute(np.array([0.0, 0.0, 2.0]), np.array([2.0, 0.0, 0.0]))
        assert msg.time_to_collision == pytest.approx(10.0 / 2.0, abs=1.0)

    def test_no_collision_when_moving_away(self):
        checker = CollisionChecker()
        checker.update_map(_wall_centers(x=10.0), resolution=1.0)
        msg = checker.compute(np.array([0.0, 0.0, 2.0]), np.array([-2.0, 0.0, 0.0]))
        assert np.isinf(msg.time_to_collision)

    def test_slow_speed_reports_infinite_ttc(self):
        checker = CollisionChecker(CollisionCheckConfig(min_speed=0.5))
        checker.update_map(_wall_centers(), resolution=1.0)
        msg = checker.compute(np.array([0.0, 0.0, 2.0]), np.array([0.1, 0.0, 0.0]))
        assert np.isinf(msg.time_to_collision)

    def test_closest_obstacle_distance(self):
        checker = CollisionChecker()
        checker.update_map(np.array([[5.0, 0.0, 2.0]]), resolution=1.0)
        msg = checker.compute(np.array([0.0, 0.0, 2.0]), np.array([1.0, 0, 0]))
        assert msg.closest_obstacle_distance == pytest.approx(4.5, abs=0.1)

    def test_future_collision_seq_increments_once_per_event(self):
        checker = CollisionChecker()
        checker.update_map(_wall_centers(x=10.0), resolution=1.0)
        waypoints = [Waypoint(x=float(x), y=0.0, z=2.0) for x in range(0, 20, 2)]
        position = np.array([0.0, 0.0, 2.0])
        velocity = np.array([1.0, 0.0, 0.0])
        first = checker.compute(position, velocity, waypoints)
        second = checker.compute(position, velocity, waypoints)
        assert first.future_collision_seq == 1
        assert second.future_collision_seq == 1  # same, still-present event

    def test_future_collision_clears_when_trajectory_avoids(self):
        checker = CollisionChecker()
        checker.update_map(_wall_centers(x=10.0), resolution=1.0)
        clear_waypoints = [Waypoint(x=float(x), y=10.0, z=2.0) for x in range(0, 20, 2)]
        msg = checker.compute(np.array([0, 10.0, 2.0]), np.array([1.0, 0, 0]), clear_waypoints)
        assert msg.future_collision_seq == 0

    def test_reset(self):
        checker = CollisionChecker()
        checker.update_map(_wall_centers(), resolution=1.0)
        checker.reset()
        assert np.isinf(checker.distance_to_nearest(np.zeros(3)))


class TestCollisionCheckNode:
    def test_node_publishes_after_receiving_inputs(self):
        graph = NodeGraph()
        node = CollisionCheckNode(check_rate=4.0)
        graph.add_node(node)
        graph.start_all()
        graph.topic_bus.publish(
            topics.OCCUPANCY_MAP,
            OccupancyMapMsg(resolution=1.0, occupied_centers=_wall_centers(x=8.0)),
        )
        graph.topic_bus.publish(
            topics.ODOMETRY,
            OdometryMsg(position=np.array([0.0, 0.0, 2.0]), velocity=np.array([2.0, 0, 0])),
        )
        graph.spin_until(1.0)
        msg = graph.topic_bus.last_message(topics.COLLISION_CHECK)
        assert msg is not None
        assert np.isfinite(msg.time_to_collision)

    def test_node_silent_without_odometry(self):
        graph = NodeGraph()
        node = CollisionCheckNode()
        graph.add_node(node)
        graph.start_all()
        graph.spin_until(1.0)
        assert graph.topic_bus.last_message(topics.COLLISION_CHECK) is None

    def test_node_uses_trajectory_for_future_collision(self):
        graph = NodeGraph()
        node = CollisionCheckNode(check_rate=4.0)
        graph.add_node(node)
        graph.start_all()
        graph.topic_bus.publish(
            topics.OCCUPANCY_MAP,
            OccupancyMapMsg(resolution=1.0, occupied_centers=_wall_centers(x=12.0)),
        )
        graph.topic_bus.publish(
            topics.ODOMETRY,
            OdometryMsg(position=np.array([0.0, 0.0, 2.0]), velocity=np.array([0.5, 0, 0])),
        )
        graph.topic_bus.publish(
            topics.TRAJECTORY,
            MultiDOFTrajectoryMsg(
                waypoints=[Waypoint(x=float(x), y=0.0, z=2.0) for x in range(0, 20, 2)]
            ),
        )
        graph.spin_until(1.0)
        msg = graph.topic_bus.last_message(topics.COLLISION_CHECK)
        assert msg.future_collision_seq >= 1

    def test_reset_kernel_clears_state(self):
        graph = NodeGraph()
        node = CollisionCheckNode()
        graph.add_node(node)
        graph.start_all()
        graph.topic_bus.publish(
            topics.ODOMETRY, OdometryMsg(position=np.zeros(3), velocity=np.zeros(3))
        )
        node.reset_kernel()
        assert node._latest_odometry is None


class TestComplementaryFilter:
    def test_invalid_gain_rejected(self):
        with pytest.raises(ValueError):
            ComplementaryFilter(correction_gain=1.5)

    def test_first_correction_snaps_to_measurement(self):
        filt = ComplementaryFilter(correction_gain=0.5)
        estimate = filt.correct(np.array([1.0, 2.0, 3.0]), np.zeros(3), 0.3)
        assert np.allclose(estimate.position, [1, 2, 3])
        assert estimate.yaw == pytest.approx(0.3)

    def test_prediction_integrates_acceleration(self):
        filt = ComplementaryFilter()
        filt.correct(np.zeros(3), np.zeros(3), 0.0)
        estimate = filt.predict(np.array([1.0, 0.0, 0.0]), 0.0, 1.0)
        assert estimate.velocity[0] == pytest.approx(1.0)
        assert estimate.position[0] == pytest.approx(0.5)

    def test_correction_blends(self):
        filt = ComplementaryFilter(correction_gain=0.5)
        filt.correct(np.zeros(3), np.zeros(3), 0.0)
        estimate = filt.correct(np.array([2.0, 0, 0]), np.zeros(3), 0.0)
        assert estimate.position[0] == pytest.approx(1.0)

    def test_yaw_blend_wraps_correctly(self):
        filt = ComplementaryFilter(correction_gain=1.0)
        filt.correct(np.zeros(3), np.zeros(3), 3.1)
        estimate = filt.correct(np.zeros(3), np.zeros(3), -3.1)
        assert abs(estimate.yaw) > 3.0  # blended across the wrap, not through 0

    def test_negative_dt_rejected(self):
        filt = ComplementaryFilter()
        with pytest.raises(ValueError):
            filt.predict(np.zeros(3), 0.0, -0.1)

    def test_reset(self):
        filt = ComplementaryFilter()
        filt.correct(np.array([5.0, 0, 0]), np.zeros(3), 0.0)
        filt.reset()
        assert np.allclose(filt.estimate.position, 0.0)

    def test_reset_to_estimate(self):
        filt = ComplementaryFilter()
        filt.reset(StateEstimate(position=np.array([1.0, 1.0, 1.0])))
        assert np.allclose(filt.estimate.position, 1.0)
