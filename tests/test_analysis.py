"""Tests for trajectory analysis and report formatting."""

import pytest

from repro.analysis.reporting import (
    format_distribution_table,
    format_overhead_table,
    format_percentage_map,
    format_success_rate_table,
    format_table,
)
from repro.analysis.trajectory import analyze_trajectory, compare_trajectories
from repro.core.overhead import OverheadReport


class TestTrajectoryAnalysis:
    def test_straight_line_metrics(self):
        trajectory = [[float(x), 0.0, 2.0] for x in range(0, 11)]
        metrics = analyze_trajectory(trajectory)
        assert metrics.path_length == pytest.approx(10.0)
        assert metrics.straight_line_distance == pytest.approx(10.0)
        assert metrics.detour_ratio == pytest.approx(1.0)
        assert metrics.max_lateral_deviation == pytest.approx(0.0)

    def test_detour_metrics(self):
        trajectory = [[0, 0, 2], [5, 5, 2], [10, 0, 2]]
        metrics = analyze_trajectory(trajectory)
        assert metrics.detour_ratio > 1.3
        assert metrics.max_lateral_deviation == pytest.approx(5.0)

    def test_single_point_trajectory(self):
        metrics = analyze_trajectory([[1.0, 2.0, 3.0]])
        assert metrics.path_length == 0.0
        assert metrics.num_points == 1

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            analyze_trajectory([[1.0, 2.0]])

    def test_compare_identical_trajectories(self):
        trajectory = [[float(x), 0.0, 2.0] for x in range(10)]
        comparison = compare_trajectories(trajectory, trajectory)
        assert comparison.mean_deviation == pytest.approx(0.0)
        assert comparison.length_ratio == pytest.approx(1.0)

    def test_compare_detoured_trajectory(self):
        reference = [[float(x), 0.0, 2.0] for x in range(11)]
        detour = [[float(x), 3.0 if 3 <= x <= 7 else 0.0, 2.0] for x in range(11)]
        comparison = compare_trajectories(detour, reference)
        assert comparison.max_deviation >= 2.5
        assert comparison.length_ratio > 1.0

    def test_degenerate_reference_yields_inf_length_ratio(self):
        """Regression: a zero-length reference used to report length_ratio 1.0
        ("identical length") even against an arbitrarily long trajectory."""
        long_trajectory = [[float(x), 0.0, 2.0] for x in range(11)]
        hover = [[5.0, 5.0, 2.0]] * 4
        comparison = compare_trajectories(long_trajectory, hover)
        assert comparison.length_ratio == float("inf")

    def test_both_degenerate_trajectories_ratio_one(self):
        hover = [[5.0, 5.0, 2.0]] * 4
        comparison = compare_trajectories(hover, hover)
        assert comparison.length_ratio == pytest.approx(1.0)
        assert comparison.mean_deviation == pytest.approx(0.0)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "long_header"], [[1, 2], [30, 40]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long_header" in lines[1]
        assert len(lines) == 5

    def test_success_rate_table(self):
        rates = {"golden": {"farm": 1.0, "dense": 0.85}, "injection": {"farm": 0.97}}
        text = format_success_rate_table(
            rates,
            environments=["farm", "dense"],
            settings=["golden", "injection"],
            setting_labels={"golden": "Golden Run", "injection": "Injection Run"},
        )
        assert "Golden Run" in text
        assert "85.0%" in text
        assert "-" in text  # missing dense/injection cell

    def test_distribution_table(self):
        text = format_distribution_table({"golden": [10, 11, 12], "fi": [10, 20, 30]})
        assert "golden" in text and "fi" in text
        assert "30.0" in text

    def test_distribution_table_empty_sample_renders_dashes(self):
        """Regression: an empty sample used to render as a real 0.0 row,
        indistinguishable from genuinely zero flight times."""
        text = format_distribution_table({"empty": [], "zero": [0.0, 0.0]})
        empty_row = next(line for line in text.splitlines() if line.startswith("empty"))
        zero_row = next(line for line in text.splitlines() if line.startswith("zero"))
        assert "0.0" not in empty_row
        assert empty_row.split()[1] == "0"  # n column
        assert empty_row.count("-") >= 6
        assert "0.0" in zero_row

    def test_overhead_table(self):
        report = OverheadReport(
            detector="gad",
            environment="sparse",
            detection_fraction={"perception": 1e-6},
            recovery_fraction={"perception": 0.01},
        )
        text = format_overhead_table({"sparse": report})
        assert "sparse" in text
        assert "RECOV" in text

    def test_overhead_rows_cover_recovery_only_stages(self):
        """Regression: the AAD report detects under "ppc" but recovers under
        "control"; iterating only the detection keys dropped the control
        RECOV row while the sum line still included it."""
        report = OverheadReport(
            detector="aad",
            environment="farm",
            detection_fraction={"ppc": 0.0001},
            recovery_fraction={"control": 0.0040},
        )
        rows = report.rows()
        assert any(row.startswith("control") for row in rows)
        assert report.stages() == ["ppc", "control"]

    def test_overhead_rows_sum_to_total(self):
        report = OverheadReport(
            detector="aad",
            environment="farm",
            detection_fraction={"ppc": 0.0001},
            recovery_fraction={"control": 0.0040, "perception": 0.0002},
        )
        printed = 0.0
        for row in report.rows()[:-1]:
            parts = row.split()
            printed += float(parts[2].rstrip("%")) + float(parts[4].rstrip("%"))
        assert printed / 100 == pytest.approx(report.total_overhead, abs=1e-7)
        assert f"{report.total_overhead * 100:.4f}%" in report.rows()[-1]

    def test_percentage_map(self):
        text = format_percentage_map({"recovered": 0.875}, title="Recovery")
        assert "87.5%" in text
