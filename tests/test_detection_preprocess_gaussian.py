"""Tests for data preprocessing and the Gaussian-based detector (GAD)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fault import flip_float_bit
from repro.detection.gaussian import CGad, GadConfig, GaussianDetector, OnlineGaussian
from repro.detection.preprocess import (
    DataPreprocessor,
    TRANSFORM_RANGE,
    sign_exponent_int16,
)


class TestSignExponentTransform:
    def test_zero_maps_to_zero(self):
        assert sign_exponent_int16(0.0) == 0
        assert sign_exponent_int16(-0.0) == 0

    def test_sign_preserved(self):
        assert sign_exponent_int16(3.0) > 0
        assert sign_exponent_int16(-3.0) < 0
        assert sign_exponent_int16(3.0) == -sign_exponent_int16(-3.0)

    def test_monotonic_in_magnitude(self):
        values = [0.001, 0.1, 1.0, 10.0, 1e5, 1e100, 1e300]
        transformed = [sign_exponent_int16(v) for v in values]
        assert transformed == sorted(transformed)

    def test_mantissa_flip_invisible(self):
        value = 42.0
        corrupted = flip_float_bit(value, 10)  # mantissa bit
        assert sign_exponent_int16(value) == sign_exponent_int16(corrupted)

    def test_exponent_flip_to_huge_value_very_visible(self):
        # Bit 61 of 42.0 is clear; setting it multiplies the value by 2^512.
        value = 42.0
        corrupted = flip_float_bit(value, 61)
        delta = abs(sign_exponent_int16(corrupted) - sign_exponent_int16(value))
        assert delta > 400

    def test_exponent_flip_to_tiny_value_less_visible(self):
        # Bit 62 of 42.0 is set; clearing it collapses the value towards zero,
        # so the visible delta is only the magnitude of the original value's
        # transform -- the kind of corruption GAD can miss (Section VI-A).
        value = 42.0
        corrupted = flip_float_bit(value, 62)
        delta = abs(sign_exponent_int16(corrupted) - sign_exponent_int16(value))
        assert 0 < delta < 100

    def test_nan_maps_to_extreme(self):
        assert sign_exponent_int16(float("nan")) == TRANSFORM_RANGE

    def test_tiny_values_clamped_to_zero(self):
        assert sign_exponent_int16(1e-12) == 0
        assert sign_exponent_int16(-1e-12) == 0

    def test_within_int16_range(self):
        for v in (1e308, -1e308, 1e-308, float("inf"), -float("inf")):
            assert -32768 <= sign_exponent_int16(v) <= 32767


class TestDataPreprocessor:
    def test_first_sample_has_no_delta(self):
        pre = DataPreprocessor()
        assert pre.update("x", 1.0) is None
        assert pre.update("x", 2.0) is not None

    def test_delta_is_difference_of_transforms(self):
        pre = DataPreprocessor()
        pre.update("x", 1.0)
        delta = pre.update("x", 4.0)
        assert delta == sign_exponent_int16(4.0) - sign_exponent_int16(1.0)

    def test_features_independent(self):
        pre = DataPreprocessor()
        pre.update("x", 1.0)
        assert pre.update("y", 100.0) is None

    def test_update_many(self):
        pre = DataPreprocessor()
        pre.update_many({"a": 1.0, "b": 2.0})
        deltas = pre.update_many({"a": 2.0, "b": 2.0})
        assert set(deltas) == {"a", "b"}
        assert deltas["b"] == 0

    def test_reset_feature(self):
        pre = DataPreprocessor()
        pre.update("a", 1.0)
        pre.reset_feature(["a"])
        assert pre.update("a", 100.0) is None

    def test_reset_all(self):
        pre = DataPreprocessor()
        pre.update_many({"a": 1.0, "b": 2.0})
        pre.reset()
        assert pre.known_features() == []


class TestOnlineGaussian:
    def test_matches_numpy_statistics(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(5.0, 2.0, size=500)
        estimator = OnlineGaussian()
        for sample in samples:
            estimator.update(sample)
        assert estimator.mean == pytest.approx(samples.mean(), rel=1e-9)
        assert estimator.std == pytest.approx(samples.std(ddof=1), rel=1e-9)

    def test_std_zero_before_two_samples(self):
        estimator = OnlineGaussian()
        assert estimator.std == 0.0
        estimator.update(3.0)
        assert estimator.std == 0.0

    def test_merge_prior(self):
        estimator = OnlineGaussian()
        estimator.merge_prior(mean=10.0, std=2.0, count=100)
        assert estimator.mean == 10.0
        assert estimator.std == pytest.approx(2.0, rel=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    def test_welford_agrees_with_batch_computation(self, values):
        """Property: the Eq. (1)-(2) recurrences equal the batch mean/std."""
        estimator = OnlineGaussian()
        for value in values:
            estimator.update(value)
        assert estimator.mean == pytest.approx(np.mean(values), rel=1e-6, abs=1e-6)
        assert estimator.std == pytest.approx(np.std(values, ddof=1), rel=1e-6, abs=1e-6)


class TestCGad:
    def test_not_armed_before_min_samples(self):
        detector = CGad("x", GadConfig(min_samples=10))
        for _ in range(5):
            assert not detector.check(1000.0).anomalous

    def test_detects_outlier_after_training(self):
        detector = CGad("x", GadConfig(n_sigma=5, min_samples=5, min_std=1.0))
        for value in np.random.default_rng(0).normal(0, 2, 100):
            detector.check(value)
        assert detector.check(100.0).anomalous

    def test_anomalous_sample_not_folded_into_model(self):
        detector = CGad("x", GadConfig(n_sigma=5, min_samples=5, min_std=1.0))
        for value in np.random.default_rng(0).normal(0, 2, 100):
            detector.check(value)
        mean_before = detector.model.mean
        detector.check(1000.0)
        assert detector.model.mean == mean_before

    def test_online_update_disabled(self):
        detector = CGad("x", GadConfig(online_update=False, min_samples=1))
        detector.check(1.0)
        assert detector.model.count == 0


class TestGaussianDetector:
    def test_fit_and_detect(self, synthetic_training_deltas):
        detector = GaussianDetector(GadConfig(n_sigma=6, min_samples=5))
        detector.fit(synthetic_training_deltas)
        anomalies = detector.check_sample({"waypoint_x": 900.0})
        assert anomalies and anomalies[0].feature == "waypoint_x"

    def test_normal_sample_not_flagged(self, trained_gad):
        assert trained_gad.check_sample({"waypoint_x": 1.0, "command_vx": 2.0}) == []

    def test_unknown_feature_ignored(self, trained_gad):
        assert trained_gad.check_sample({"not_a_feature": 1e9}) == []

    def test_stage_routing(self, trained_gad):
        assert trained_gad.stage_of("time_to_collision") == "perception"
        assert trained_gad.stage_of("waypoint_x") == "planning"
        assert trained_gad.stage_of("command_vx") == "control"

    def test_alarm_counting(self, synthetic_training_deltas):
        detector = GaussianDetector(GadConfig(n_sigma=6, min_samples=5))
        detector.fit(synthetic_training_deltas)
        detector.check_sample({"waypoint_x": 5000.0})
        assert detector.total_alarms == 1

    def test_save_and_load_round_trip(self, trained_gad, tmp_path):
        path = tmp_path / "gad.json"
        trained_gad.save(path)
        loaded = GaussianDetector.load(path)
        assert set(loaded.detectors) == set(trained_gad.detectors)
        original = trained_gad.detectors["waypoint_x"].model
        restored = loaded.detectors["waypoint_x"].model
        assert restored.mean == pytest.approx(original.mean)
        assert restored.std == pytest.approx(original.std, rel=1e-6)
        # The loaded detector must behave identically on a clear outlier.
        assert bool(loaded.check_sample({"waypoint_x": 9000.0}))
