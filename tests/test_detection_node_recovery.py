"""Tests for the anomaly detection node, recovery coordinator and their wiring."""

import copy

import pytest

from repro import topics
from repro.detection.node import AnomalyDetectionNode, DetectionPolicy, attach_detection
from repro.detection.recovery import RecoveryCoordinatorNode
from repro.pipeline.builder import PipelineConfig, build_pipeline
from repro.pipeline.runner import MissionRunner
from repro.rosmw.message import (
    FlightCommandMsg,
    MultiDOFTrajectoryMsg,
    RecomputeRequestMsg,
    Waypoint,
)


class _StubKernel:
    """Minimal kernel-like object for recovery coordinator tests."""

    def __init__(self, name, stage, can_recompute=True):
        self.name = name
        self.stage = stage
        self.can_recompute = can_recompute
        self.recompute_calls = 0

    def recompute(self):
        self.recompute_calls += 1
        return self.can_recompute


class TestRecoveryCoordinator:
    def test_routes_to_stage_kernels(self, graph):
        perception = _StubKernel("octomap", "perception")
        control = _StubKernel("pid", "control")
        node = RecoveryCoordinatorNode([perception, control])
        graph.add_node(node)
        graph.start_all()
        assert node.recompute_stage("perception")
        assert perception.recompute_calls == 1
        assert control.recompute_calls == 0
        assert node.recovery_counts["perception"] == 1

    def test_services_advertised(self, graph):
        node = RecoveryCoordinatorNode([_StubKernel("pid", "control")])
        graph.add_node(node)
        graph.start_all()
        for service in topics.RECOMPUTE_SERVICES.values():
            assert graph.service_bus.has_service(service)

    def test_service_call_triggers_recompute(self, graph):
        kernel = _StubKernel("pid", "control")
        node = RecoveryCoordinatorNode([kernel])
        graph.add_node(node)
        graph.start_all()
        graph.service_bus.call(topics.RECOMPUTE_SERVICES["control"], RecomputeRequestMsg())
        assert kernel.recompute_calls == 1

    def test_stage_without_kernels_reports_false(self, graph):
        node = RecoveryCoordinatorNode([])
        graph.add_node(node)
        graph.start_all()
        assert not node.recompute_stage("planning")
        assert node.total_recoveries == 0

    def test_kernel_that_cannot_recompute(self, graph):
        kernel = _StubKernel("pid", "control", can_recompute=False)
        node = RecoveryCoordinatorNode([kernel])
        graph.add_node(node)
        graph.start_all()
        assert not node.recompute_stage("control")


def _trajectory(xs, corrupt_index=None, corrupt_value=1e155):
    waypoints = [Waypoint(x=float(x), y=0.0, z=2.0, vx=3.0) for x in xs]
    if corrupt_index is not None:
        waypoints[corrupt_index].x = corrupt_value
    return MultiDOFTrajectoryMsg(waypoints=waypoints)


class TestAnomalyDetectionNode:
    def _graph_with_detection(self, detector, graph):
        node = AnomalyDetectionNode(copy.deepcopy(detector), detection_latency=1e-6)
        graph.add_node(node)
        graph.start_all()
        return node

    def test_clean_messages_pass_through(self, graph, trained_gad):
        node = self._graph_with_detection(trained_gad, graph)
        received = []
        graph.topic_bus.subscribe(topics.TRAJECTORY, MultiDOFTrajectoryMsg, received.append)
        graph.topic_bus.publish(topics.TRAJECTORY, _trajectory(range(0, 20, 2)))
        assert len(received) == 1
        assert node.total_alarms == 0

    def test_corrupted_trajectory_dropped_and_alarm_raised(self, graph, trained_gad):
        node = self._graph_with_detection(trained_gad, graph)
        received = []
        graph.topic_bus.subscribe(topics.TRAJECTORY, MultiDOFTrajectoryMsg, received.append)
        graph.topic_bus.publish(topics.TRAJECTORY, _trajectory(range(0, 20, 2), corrupt_index=5))
        assert received == []
        assert node.total_alarms == 1
        assert node.alarms_by_stage["planning"] == 1
        assert node.dropped_messages == 1

    def test_corrupted_command_dropped(self, graph, trained_gad):
        node = self._graph_with_detection(trained_gad, graph)
        received = []
        graph.topic_bus.subscribe(topics.FLIGHT_COMMAND, FlightCommandMsg, received.append)
        graph.topic_bus.publish(topics.FLIGHT_COMMAND, FlightCommandMsg(vx=1.0))
        graph.topic_bus.publish(topics.FLIGHT_COMMAND, FlightCommandMsg(vx=1e200))
        assert len(received) == 1
        assert node.alarms_by_stage["control"] == 1

    def test_aad_policy_recomputes_control_stage(self, graph, trained_aad):
        node = AnomalyDetectionNode(copy.deepcopy(trained_aad), detection_latency=1e-6)
        calls = []
        graph.add_node(node)
        graph.service_bus.advertise(
            topics.RECOMPUTE_SERVICES["control"], lambda req: calls.append("control") or True
        )
        graph.service_bus.advertise(
            topics.RECOMPUTE_SERVICES["planning"], lambda req: calls.append("planning") or True
        )
        graph.start_all()
        graph.topic_bus.publish(topics.TRAJECTORY, _trajectory(range(0, 20, 2), corrupt_index=4))
        assert calls == ["control"]

    def test_gad_policy_recomputes_owning_stage(self, graph, trained_gad):
        node = AnomalyDetectionNode(copy.deepcopy(trained_gad), detection_latency=1e-6)
        calls = []
        graph.add_node(node)
        for stage, service in topics.RECOMPUTE_SERVICES.items():
            graph.service_bus.advertise(service, lambda req, s=stage: calls.append(s) or True)
        graph.start_all()
        graph.topic_bus.publish(topics.TRAJECTORY, _trajectory(range(0, 20, 2), corrupt_index=4))
        assert calls == ["planning"]

    def test_detection_time_charged(self, graph, trained_gad):
        node = self._graph_with_detection(trained_gad, graph)
        graph.topic_bus.publish(topics.FLIGHT_COMMAND, FlightCommandMsg(vx=1.0))
        graph.topic_bus.publish(topics.FLIGHT_COMMAND, FlightCommandMsg(vx=1.1))
        assert node.accounting.busy_time > 0
        assert any(key.startswith("detection:") for key in node.accounting.categories)

    def test_no_drop_policy(self, graph, trained_gad):
        node = AnomalyDetectionNode(
            copy.deepcopy(trained_gad),
            policy=DetectionPolicy(recompute_target="stage", drop_corrupted_message=False),
        )
        graph.add_node(node)
        graph.start_all()
        received = []
        graph.topic_bus.subscribe(topics.TRAJECTORY, MultiDOFTrajectoryMsg, received.append)
        graph.topic_bus.publish(topics.TRAJECTORY, _trajectory(range(0, 20, 2), corrupt_index=5))
        assert len(received) == 1
        assert node.total_alarms == 1

    def test_first_alarm_time_recorded(self, graph, trained_gad):
        node = self._graph_with_detection(trained_gad, graph)
        assert node.first_alarm_time is None
        graph.clock.set(3.5)
        graph.topic_bus.publish(topics.TRAJECTORY, _trajectory(range(0, 20, 2), corrupt_index=5))
        assert node.first_alarm_time == 3.5
        assert node.first_alarm_time_by_stage == {"planning": 3.5}
        # A later alarm must not move the first-alarm stamps.
        graph.clock.set(7.0)
        graph.topic_bus.publish(topics.TRAJECTORY, _trajectory(range(0, 20, 2), corrupt_index=5))
        assert node.total_alarms == 2
        assert node.first_alarm_time == 3.5
        assert node.first_alarm_time_by_stage["planning"] == 3.5

    def test_reset_detection(self, graph, trained_gad):
        node = self._graph_with_detection(trained_gad, graph)
        graph.topic_bus.publish(topics.TRAJECTORY, _trajectory(range(0, 20, 2), corrupt_index=5))
        assert node.first_alarm_time is not None
        node.reset_detection()
        assert node.total_alarms == 0
        assert node.dropped_messages == 0
        assert node.first_alarm_time is None
        assert node.first_alarm_time_by_stage == {}

    def test_shutdown_removes_taps(self, graph, trained_gad):
        node = self._graph_with_detection(trained_gad, graph)
        node.shutdown()
        received = []
        graph.topic_bus.subscribe(topics.TRAJECTORY, MultiDOFTrajectoryMsg, received.append)
        graph.topic_bus.publish(topics.TRAJECTORY, _trajectory(range(0, 20, 2), corrupt_index=5))
        assert len(received) == 1  # no longer intercepted


class TestAttachDetection:
    def test_attach_wires_nodes_and_extras(self, trained_gad):
        handles = build_pipeline(PipelineConfig(environment="farm", seed=0))
        detection, recovery = attach_detection(handles, copy.deepcopy(trained_gad))
        assert handles.graph.has_node("anomaly_detection")
        assert handles.graph.has_node("recovery_coordinator")
        assert handles.extras["detection_node"] is detection
        assert handles.extras["recovery_node"] is recovery

    def test_detection_latency_from_platform(self, trained_aad):
        handles = build_pipeline(PipelineConfig(environment="farm", seed=0))
        detection, _ = attach_detection(handles, copy.deepcopy(trained_aad))
        assert detection.detection_latency == pytest.approx(
            handles.platform.detection_latency("aad")
        )

    def test_full_mission_with_detection_still_succeeds(self, trained_aad):
        handles = build_pipeline(PipelineConfig(environment="farm", seed=0))
        attach_detection(handles, copy.deepcopy(trained_aad))
        result = MissionRunner(handles).run(setting="dr", seed=0)
        assert result.success
