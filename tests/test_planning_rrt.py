"""Tests for the sampling-based motion planners (RRT, RRT-Connect, RRT*)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.planning.rrt import (
    PlanningProblem,
    RRTConnectPlanner,
    RRTPlanner,
    RRTStarPlanner,
    make_planner,
)


def _wall_problem(gap_y=8.0):
    """A wall at x=25 with a gap around y=gap_y (occupied voxel centres)."""
    centers = []
    for y in np.arange(-28.0, 28.0, 1.0):
        if abs(y - gap_y) < 4.0:
            continue
        for z in np.arange(0.5, 9.5, 1.0):
            centers.append([25.0, y, z])
    return PlanningProblem(
        start=np.array([0.0, 0.0, 2.0]),
        goal=np.array([50.0, 0.0, 2.0]),
        occupied_centers=np.array(centers),
        clearance=1.2,
    )


def _free_problem():
    return PlanningProblem(
        start=np.array([0.0, 0.0, 2.0]),
        goal=np.array([40.0, 0.0, 2.0]),
    )


class TestPlanningProblem:
    def test_state_valid_respects_bounds(self):
        problem = _free_problem()
        assert problem.state_valid(np.array([10.0, 0.0, 2.0]))
        assert not problem.state_valid(np.array([100.0, 0.0, 2.0]))

    def test_state_valid_respects_clearance(self):
        problem = _wall_problem()
        assert not problem.state_valid(np.array([25.0, 0.0, 2.0]))
        assert problem.state_valid(np.array([25.0, 8.0, 2.0]))

    def test_edge_valid_through_wall_rejected(self):
        problem = _wall_problem()
        assert not problem.edge_valid(np.array([20.0, 0.0, 2.0]), np.array([30.0, 0.0, 2.0]))
        assert problem.edge_valid(np.array([20.0, 8.0, 2.0]), np.array([30.0, 8.0, 2.0]))

    def test_edge_valid_free_space(self):
        problem = _free_problem()
        assert problem.edge_valid(np.array([0.0, 0, 2]), np.array([40.0, 0, 2]))


@pytest.mark.parametrize("planner_name", ["rrt", "rrt_connect", "rrt_star"])
class TestPlannersSucceed:
    def test_free_space(self, planner_name):
        planner = make_planner(planner_name, seed=1, max_iterations=400)
        result = planner.plan(_free_problem())
        assert result.success
        assert result.planner_name == planner_name
        assert len(result.path) >= 2

    def test_path_endpoints(self, planner_name):
        planner = make_planner(planner_name, seed=1, max_iterations=400)
        problem = _free_problem()
        result = planner.plan(problem)
        assert np.linalg.norm(result.path[0] - problem.start) < 1e-6
        assert np.linalg.norm(result.path[-1] - problem.goal) <= planner.goal_tolerance + planner.step_size

    def test_path_avoids_obstacles(self, planner_name):
        planner = make_planner(planner_name, seed=2, max_iterations=900)
        problem = _wall_problem()
        result = planner.plan(problem)
        assert result.success
        for a, b in zip(result.path[:-1], result.path[1:]):
            assert problem.edge_valid(a, b, step=0.5)

    def test_deterministic_given_seed(self, planner_name):
        problem = _wall_problem()
        r1 = make_planner(planner_name, seed=7, max_iterations=700).plan(problem)
        r2 = make_planner(planner_name, seed=7, max_iterations=700).plan(problem)
        assert r1.success == r2.success
        if r1.success:
            assert np.allclose(np.asarray(r1.path), np.asarray(r2.path))


class TestPlannerSpecifics:
    def test_unknown_planner_rejected(self):
        with pytest.raises(KeyError):
            make_planner("prm")

    def test_impossible_problem_fails_gracefully(self):
        # Goal completely enclosed by occupied voxels.
        centers = []
        for dx in np.arange(-3, 3.5, 1.0):
            for dy in np.arange(-3, 3.5, 1.0):
                for dz in np.arange(-3, 3.5, 1.0):
                    if max(abs(dx), abs(dy), abs(dz)) >= 2.0:
                        centers.append([40.0 + dx, dy, 3.0 + dz])
        problem = PlanningProblem(
            start=np.array([0.0, 0.0, 2.0]),
            goal=np.array([40.0, 0.0, 3.0]),
            occupied_centers=np.array(centers),
            clearance=1.0,
        )
        result = RRTPlanner(max_iterations=150, seed=0).plan(problem)
        assert not result.success
        assert result.path == []

    def test_rrt_star_path_not_longer_than_rrt(self):
        """RRT* refines towards shorter paths than plain RRT (same budget)."""
        problem = _wall_problem()
        rrt = make_planner("rrt", seed=3, max_iterations=800).plan(problem)
        rrt_star = make_planner("rrt_star", seed=3, max_iterations=800).plan(problem)
        if rrt.success and rrt_star.success:
            assert rrt_star.length <= rrt.length * 1.25

    def test_rrt_star_early_stop_after_goal(self):
        planner = RRTStarPlanner(max_iterations=2000, goal_extra_iterations=50, seed=1)
        result = planner.plan(_free_problem())
        assert result.success
        assert result.iterations <= 2000

    def test_rrt_connect_uses_two_trees(self):
        planner = RRTConnectPlanner(seed=1, max_iterations=400)
        result = planner.plan(_free_problem())
        assert result.success
        assert result.tree_size >= 2

    def test_result_length_property(self):
        result = make_planner("rrt", seed=1).plan(_free_problem())
        assert result.length >= np.linalg.norm(np.array([40.0, 0, 0]) - 0) - 5.0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_returned_path_is_always_collision_free(self, seed):
        """Property: any successful RRT* path has only valid edges."""
        problem = _wall_problem()
        result = RRTStarPlanner(seed=seed, max_iterations=500).plan(problem)
        if result.success:
            for a, b in zip(result.path[:-1], result.path[1:]):
                assert problem.edge_valid(a, b)
