"""Tests for the cuboid world: collision queries and ray casting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.world import Cuboid, World


class TestCuboid:
    def test_from_center(self):
        box = Cuboid.from_center((10, 0, 3), (4, 2, 6))
        assert box.lo == (8.0, -1.0, 0.0)
        assert box.hi == (12.0, 1.0, 6.0)

    def test_center_and_size(self):
        box = Cuboid(lo=(0, 0, 0), hi=(2, 4, 6))
        assert np.allclose(box.center, [1, 2, 3])
        assert np.allclose(box.size, [2, 4, 6])

    def test_contains(self):
        box = Cuboid(lo=(0, 0, 0), hi=(1, 1, 1))
        assert box.contains((0.5, 0.5, 0.5))
        assert box.contains((0.0, 0.0, 0.0))
        assert not box.contains((1.5, 0.5, 0.5))

    def test_invalid_extents_rejected(self):
        with pytest.raises(ValueError):
            Cuboid(lo=(1, 0, 0), hi=(0, 1, 1))


class TestCollisionQueries:
    def test_point_collides(self, simple_world):
        assert simple_world.point_collides((10, 0, 3))
        assert not simple_world.point_collides((0, 0, 1))

    def test_point_collides_with_inflation(self, simple_world):
        # 0.5 m outside the box face at x = 12.
        assert not simple_world.point_collides((12.5, 0, 3))
        assert simple_world.point_collides((12.5, 0, 3), inflation=1.0)

    def test_distance_to_nearest(self, simple_world):
        # Box spans x in [8, 12]; from x=0 the surface is 8 m away.
        assert simple_world.distance_to_nearest((0, 0, 3)) == pytest.approx(8.0)
        assert simple_world.distance_to_nearest((10, 0, 3)) == 0.0

    def test_distance_in_empty_world(self):
        world = World(name="empty")
        assert world.distance_to_nearest((0, 0, 0)) == float("inf")

    def test_sphere_collides(self, simple_world):
        assert simple_world.sphere_collides((7.5, 0, 3), radius=1.0)
        assert not simple_world.sphere_collides((5.0, 0, 3), radius=1.0)

    def test_segment_collides_through_box(self, simple_world):
        assert simple_world.segment_collides((0, 0, 3), (20, 0, 3))
        assert not simple_world.segment_collides((0, 5, 3), (20, 5, 3))

    def test_segment_collides_empty_world(self):
        assert not World().segment_collides((0, 0, 0), (10, 10, 10))

    def test_in_bounds(self):
        world = World(bounds_lo=(0, 0, 0), bounds_hi=(10, 10, 10))
        assert world.in_bounds((5, 5, 5))
        assert not world.in_bounds((11, 5, 5))
        assert not world.in_bounds((9.8, 5, 5), margin=0.5)

    def test_add_obstacles_refreshes_arrays(self):
        world = World()
        assert world.num_obstacles == 0
        world.add_obstacles([Cuboid.from_center((5, 0, 2), (2, 2, 4))])
        assert world.num_obstacles == 1
        assert world.point_collides((5, 0, 2))


class TestRayCast:
    def test_ray_hits_front_face(self, simple_world):
        depths = simple_world.ray_cast((0, 0, 3), np.array([[1.0, 0.0, 0.0]]))
        assert depths[0] == pytest.approx(8.0)

    def test_ray_misses(self, simple_world):
        depths = simple_world.ray_cast((0, 0, 3), np.array([[0.0, 1.0, 0.0]]))
        assert np.isinf(depths[0])

    def test_ray_beyond_max_range(self, simple_world):
        depths = simple_world.ray_cast((0, 0, 3), np.array([[1.0, 0.0, 0.0]]), max_range=5.0)
        assert np.isinf(depths[0])

    def test_ray_hits_ground(self):
        world = World()
        down = np.array([[0.0, 0.0, -1.0]])
        depths = world.ray_cast((0, 0, 2.0), down)
        assert depths[0] == pytest.approx(2.0)

    def test_ray_from_inside_box(self, simple_world):
        depths = simple_world.ray_cast((10, 0, 3), np.array([[1.0, 0.0, 0.0]]))
        assert depths[0] == pytest.approx(0.0)

    def test_multiple_rays_vectorized(self, simple_world):
        directions = np.array([[1.0, 0, 0], [0, 1.0, 0], [-1.0, 0, 0]])
        depths = simple_world.ray_cast((0, 0, 3), directions)
        assert depths.shape == (3,)
        assert depths[0] == pytest.approx(8.0)
        assert np.isinf(depths[1])

    def test_bad_direction_shape_rejected(self, simple_world):
        with pytest.raises(ValueError):
            simple_world.ray_cast((0, 0, 0), np.array([1.0, 0.0, 0.0]))

    @settings(max_examples=30, deadline=None)
    @given(
        x=st.floats(-4, 64), y=st.floats(-29, 29), z=st.floats(0.2, 11),
    )
    def test_distance_zero_iff_inside_some_obstacle(self, x, y, z):
        """Property: distance 0 exactly when the point is inside an obstacle."""
        world = World()
        world.add_obstacle(Cuboid.from_center((30, 0, 5), (10, 10, 10)))
        point = (x, y, z)
        inside = world.point_collides(point)
        distance = world.distance_to_nearest(point)
        if inside:
            assert distance == 0.0
        else:
            assert distance > 0.0

    @settings(max_examples=30, deadline=None)
    @given(direction=st.tuples(st.floats(-1, 1), st.floats(-1, 1), st.floats(-1, 1)))
    def test_ray_hit_point_lies_on_or_inside_obstacle(self, direction):
        """Property: a finite ray hit lands on an obstacle surface (or ground)."""
        d = np.asarray(direction, dtype=float)
        norm = np.linalg.norm(d)
        if norm < 1e-3:
            return
        d = d / norm
        world = World()
        world.add_obstacle(Cuboid.from_center((15, 0, 4), (6, 6, 8)))
        origin = np.array([0.0, 0.0, 3.0])
        depth = world.ray_cast(origin, d[None, :])[0]
        if np.isfinite(depth):
            hit = origin + depth * d
            on_ground = abs(hit[2] - world.bounds_lo[2]) < 1e-6
            near_obstacle = world.distance_to_nearest(hit) < 1e-6
            assert on_ground or near_obstacle
