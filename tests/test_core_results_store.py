"""Tests for MissionResult JSONL serialisation and the result store."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.results import (
    RESULT_FORMAT_VERSION,
    JsonlResultStore,
    flight_outcome_from_dict,
    flight_outcome_to_dict,
    mission_result_from_dict,
    mission_result_to_dict,
    mission_results_equal,
)
from repro.sim.airsim import FlightOutcome


@pytest.fixture(scope="module")
def sample_result():
    campaign = Campaign(
        CampaignConfig(environment="farm", num_golden=1, mission_time_limit=60.0)
    )
    return campaign.run_golden()[0]


class TestSerialisation:
    def test_round_trip_is_exact(self, sample_result):
        data = mission_result_to_dict(sample_result)
        restored = mission_result_from_dict(data)
        assert mission_results_equal(sample_result, restored)
        assert restored.flight_time == sample_result.flight_time
        assert restored.trajectory.shape == sample_result.trajectory.shape
        assert np.array_equal(restored.trajectory, sample_result.trajectory)

    def test_dict_is_json_serialisable(self, sample_result):
        text = json.dumps(mission_result_to_dict(sample_result))
        restored = mission_result_from_dict(json.loads(text))
        assert mission_results_equal(sample_result, restored)

    def test_outcome_round_trip_with_inf_distance(self):
        outcome = FlightOutcome(
            success=False,
            flight_time=1.5,
            trajectory=[np.array([0.0, 0.0, 1.0]), np.array([1.0, 0.0, 1.0])],
            reason="test",
        )
        restored = flight_outcome_from_dict(flight_outcome_to_dict(outcome))
        assert restored.final_distance_to_goal == float("inf")
        assert restored.reason == "test"
        assert len(restored.trajectory) == 2
        assert np.array_equal(restored.trajectory[1], outcome.trajectory[1])

    def test_inf_distance_serialises_to_strict_json(self):
        """Non-finite floats must not emit RFC-invalid Infinity/NaN tokens."""
        text = json.dumps(flight_outcome_to_dict(FlightOutcome()))
        assert "Infinity" not in text and "NaN" not in text

        def no_constants(name):
            raise AssertionError(f"non-standard JSON constant {name}")

        restored = flight_outcome_from_dict(
            json.loads(text, parse_constant=no_constants)
        )
        assert restored.final_distance_to_goal == float("inf")

    def test_empty_trajectory_round_trip(self, sample_result):
        data = mission_result_to_dict(sample_result)
        data["trajectory"] = []
        restored = mission_result_from_dict(data)
        assert restored.trajectory.shape == (0, 3)


class TestJsonlResultStore:
    def test_append_and_load(self, tmp_path, sample_result):
        store = JsonlResultStore(tmp_path / "r.jsonl")
        assert store.completed_keys() == set()
        store.append("abc", sample_result, meta={"setting": "golden", "seed": 0})
        store.append("def", sample_result)
        assert store.completed_keys() == {"abc", "def"}
        loaded = store.load_results()
        assert mission_results_equal(loaded["abc"], sample_result)
        records = store.load_records()
        assert records[0]["meta"] == {"setting": "golden", "seed": 0}
        assert len(store) == 2

    def test_skips_corrupt_lines(self, tmp_path, sample_result):
        store = JsonlResultStore(tmp_path / "r.jsonl")
        store.append("abc", sample_result)
        with store.path.open("a") as handle:
            handle.write('{"key": "torn", "result": {"succ\n')
            handle.write("not json at all\n")
        store.append("def", sample_result)
        assert store.completed_keys() == {"abc", "def"}

    def test_append_after_torn_tail_without_newline(self, tmp_path, sample_result):
        """Regression: appending after a newline-less torn tail must not merge
        the fresh record into the garbage line (which silently lost it).

        The torn tail comes from a *previous* killed writer, so the resuming
        campaign opens the file through a fresh store instance (the tail
        check runs once per instance).
        """
        store = JsonlResultStore(tmp_path / "r.jsonl")
        store.append("abc", sample_result)
        with store.path.open("a") as handle:
            handle.write('{"key": "torn", "result": {"succ')  # no newline
        resumed = JsonlResultStore(tmp_path / "r.jsonl")
        resumed.append("def", sample_result)
        assert resumed.completed_keys() == {"abc", "def"}
        loaded = resumed.load_results()
        assert mission_results_equal(loaded["def"], sample_result)

    def test_missing_file_is_empty(self, tmp_path):
        store = JsonlResultStore(tmp_path / "nope" / "r.jsonl")
        assert store.completed_keys() == set()
        assert store.load_results() == {}
        assert len(store) == 0

    def test_append_creates_parent_directory(self, tmp_path, sample_result):
        store = JsonlResultStore(tmp_path / "deep" / "dir" / "r.jsonl")
        store.append("abc", sample_result)
        assert store.path.exists()
        assert len(store) == 1

    def test_last_write_wins(self, tmp_path, sample_result):
        store = JsonlResultStore(tmp_path / "r.jsonl")
        store.append("abc", sample_result, meta={"generation": 1})
        store.append("abc", sample_result, meta={"generation": 2})
        assert len(store.load_results()) == 1
        assert store.load_records()[-1]["meta"] == {"generation": 2}


class TestFormatVersionGuard:
    """Regression: a newer writer's records must be rejected, not misread."""

    def test_writer_stamps_current_version(self, sample_result):
        assert mission_result_to_dict(sample_result)["format"] == RESULT_FORMAT_VERSION

    def test_pre_format_records_load_with_defaults(self, sample_result):
        legacy = mission_result_to_dict(sample_result)
        legacy.pop("format")
        legacy.pop("first_alarm_time", None)
        legacy.pop("injection_time", None)
        loaded = mission_result_from_dict(legacy)
        assert loaded.first_alarm_time is None
        assert loaded.injection_time is None

    def test_newer_format_rejected_loudly(self, sample_result):
        future = mission_result_to_dict(sample_result)
        future["format"] = RESULT_FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="upgrade this reader"):
            mission_result_from_dict(future)

    @pytest.mark.parametrize("marker", ["3", 3.0, 0, -1])
    def test_malformed_format_marker_rejected(self, sample_result, marker):
        data = mission_result_to_dict(sample_result)
        data["format"] = marker
        with pytest.raises(ValueError, match="format marker|upgrade this reader"):
            mission_result_from_dict(data)

    def test_record_with_non_dict_meta_is_corrupt(self, tmp_path, sample_result):
        store = JsonlResultStore(tmp_path / "r.jsonl")
        store.append("abc", sample_result)
        record = store.load_records()[0]
        record["key"] = "bad-meta"
        record["meta"] = ["not", "a", "dict"]
        with store.path.open("a") as handle:
            handle.write(json.dumps(record) + "\n")
        assert store.completed_keys() == {"abc"}
