"""Tests for golden-prefix checkpointing and the construction caches.

The contract under test is *hard bit-identity*: a mission served from a
checkpoint fork (or from any cache layer) must equal a from-scratch run byte
for byte through the JSON round-trip, for every fault type, for detector
(D&R) pipelines, and across serial / parallel / resumed execution.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import checkpoint
from repro.core.campaign import Campaign, CampaignConfig, RunSetting
from repro.core.checkpoint import (
    CheckpointManager,
    GoldenPrefixCursor,
    checkpointing_enabled,
    verification_enabled,
)
from repro.core.executor import (
    DETECTOR_AUTOENCODER,
    DETECTOR_GAUSSIAN,
    ParallelExecutor,
    RunSpec,
    SerialExecutor,
    cache_friendly_order,
    execute_spec,
)
from repro.core.injector import FaultPlan
from repro.core.results import (
    JsonlResultStore,
    mission_result_to_dict,
    mission_results_equal,
)
from repro.pipeline import builder
from repro.pipeline.builder import PipelineConfig, build_pipeline
from repro.pipeline.runner import MissionRunner


@pytest.fixture(autouse=True)
def clean_engine_caches(monkeypatch):
    """Default engine knobs and empty per-process caches for every test."""
    monkeypatch.delenv(checkpoint.NO_CHECKPOINT_ENV, raising=False)
    monkeypatch.delenv(checkpoint.CHECKPOINT_VERIFY_ENV, raising=False)
    monkeypatch.delenv(builder.NO_CACHE_ENV, raising=False)
    checkpoint.reset_checkpoint_caches()
    builder.reset_world_cache()
    yield
    checkpoint.reset_checkpoint_caches()
    builder.reset_world_cache()


def _config(**overrides) -> CampaignConfig:
    defaults = dict(
        environment="farm",
        num_golden=2,
        num_injections_per_stage=1,
        mission_time_limit=60.0,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def _scratch(spec, detectors=None, monkeypatch=None):
    """Run a spec with checkpointing and caches disabled (reference path)."""
    assert monkeypatch is not None
    monkeypatch.setenv(checkpoint.NO_CHECKPOINT_ENV, "1")
    monkeypatch.setenv(builder.NO_CACHE_ENV, "1")
    try:
        return execute_spec(spec, detectors)
    finally:
        monkeypatch.delenv(checkpoint.NO_CHECKPOINT_ENV)
        monkeypatch.delenv(builder.NO_CACHE_ENV)


class TestForkBitIdentity:
    @pytest.mark.parametrize(
        "target_type,target,injection_time",
        [
            ("stage", "planning", 5.3),
            ("stage", "perception", 4.0),  # exactly on the runner's grid
            ("stage", "control", 2.6),
            ("kernel", "octomap_generation", 7.77),
            ("kernel", "pid_control", 6.0),
            ("state", "command_vx", 6.1),
        ],
    )
    def test_fault_types(self, monkeypatch, target_type, target, injection_time):
        config = _config()
        plan = FaultPlan(
            target_type=target_type,
            target=target,
            injection_time=injection_time,
            seed=13,
        )
        spec = RunSpec(config=config, setting="injection", seed=0, fault_plan=plan)
        reference = _scratch(spec, monkeypatch=monkeypatch)
        forked = execute_spec(spec)
        assert checkpoint.checkpoint_stats().forks == 1
        assert mission_result_to_dict(forked) == mission_result_to_dict(reference)

    def test_golden_runs_served_from_cursor(self, monkeypatch):
        config = _config()
        spec = RunSpec(config=config, setting=RunSetting.GOLDEN, seed=1)
        reference = _scratch(spec, monkeypatch=monkeypatch)
        served = execute_spec(spec)
        assert checkpoint.checkpoint_stats().golden_served == 1
        assert mission_result_to_dict(served) == mission_result_to_dict(reference)

    def test_dr_pipelines_fork_identically(self, monkeypatch, trained_gad, trained_aad):
        config = _config()
        detectors = {
            DETECTOR_GAUSSIAN: trained_gad,
            DETECTOR_AUTOENCODER: trained_aad,
        }
        for tag in (DETECTOR_GAUSSIAN, DETECTOR_AUTOENCODER):
            plan = FaultPlan(
                target_type="stage", target="planning", injection_time=5.0, seed=3
            )
            spec = RunSpec(
                config=config, setting=f"dr_{tag}", seed=0, fault_plan=plan, detector=tag
            )
            reference = _scratch(spec, detectors, monkeypatch=monkeypatch)
            forked = execute_spec(spec, detectors)
            assert mission_result_to_dict(forked) == mission_result_to_dict(reference)

    def test_very_early_fault_falls_back_to_scratch(self, monkeypatch):
        config = _config()
        plan = FaultPlan(
            target_type="stage", target="perception", injection_time=0.2, seed=5
        )
        spec = RunSpec(config=config, setting="injection", seed=0, fault_plan=plan)
        reference = _scratch(spec, monkeypatch=monkeypatch)
        result = execute_spec(spec)
        assert checkpoint.checkpoint_stats().forks == 0
        assert mission_result_to_dict(result) == mission_result_to_dict(reference)

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        injection_time=st.floats(min_value=0.3, max_value=12.0),
        seed=st.integers(min_value=0, max_value=3),
        fault_seed=st.integers(min_value=0, max_value=1000),
    )
    def test_fork_identity_property(self, monkeypatch, injection_time, seed, fault_seed):
        """Any (activation time, mission seed, fault seed) forks bit-identically."""
        config = _config()
        plan = FaultPlan(
            target_type="stage",
            target="planning",
            injection_time=injection_time,
            seed=fault_seed,
        )
        spec = RunSpec(config=config, setting="injection", seed=seed, fault_plan=plan)
        reference = _scratch(spec, monkeypatch=monkeypatch)
        forked = execute_spec(spec)
        assert mission_result_to_dict(forked) == mission_result_to_dict(reference)


class TestCursorRoundTrip:
    def _cursor(self, seed=0):
        config = _config()
        spec = RunSpec(config=config, setting="injection", seed=seed)
        return GoldenPrefixCursor(spec, detector=None)

    def test_fork_does_not_perturb_the_cursor(self):
        """Snapshot/fork is read-only: forking twice yields identical state."""
        cursor = self._cursor()
        cursor.advance_before(6.0)
        first, t_first = cursor.fork()
        second, t_second = cursor.fork()
        assert t_first == t_second == cursor.t
        assert first is not cursor.handles and second is not cursor.handles
        assert first.graph.clock.now == second.graph.clock.now
        # Driving both forks to completion produces the same mission record.
        results = []
        for handles, loop_t in ((first, t_first), (second, t_second)):
            runner = MissionRunner(handles, time_step=config_time_step)
            results.append(runner.run(resume_from=loop_t))
        assert mission_result_to_dict(results[0]) == mission_result_to_dict(results[1])

    def test_fork_shares_immutables_and_copies_state(self):
        cursor = self._cursor()
        cursor.advance_before(4.0)
        handles, _ = cursor.fork()
        # Shared by design (immutable during missions):
        assert handles.world is cursor.handles.world
        assert handles.platform is cursor.handles.platform
        assert handles.config is cursor.handles.config
        # Copied by design (mutable mission state):
        assert handles.airsim is not cursor.handles.airsim
        assert handles.graph is not cursor.handles.graph
        assert handles.graph.clock is not cursor.handles.graph.clock
        for name, kernel in handles.kernels.items():
            assert kernel is not cursor.handles.kernels[name]
        # The copied graph is self-consistent: its nodes point at it, not at
        # the cursor's graph.
        for node in handles.graph.nodes:
            assert node.graph is handles.graph

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(pause=st.floats(min_value=0.5, max_value=10.0))
    def test_advance_pauses_on_the_runner_grid(self, pause):
        cursor = self._cursor(seed=1)
        cursor.advance_before(pause)
        # The pause point is on the accumulated 0.25 s grid, strictly before
        # the requested limit, and the clock agrees with the loop accumulator.
        assert cursor.t < pause
        assert cursor.t == cursor.handles.graph.clock.now
        steps = round(cursor.t / cursor.time_step)
        assert cursor.t == pytest.approx(steps * cursor.time_step)

    def test_detector_identity_guards_cursor_reuse(self, trained_gad):
        """A cursor never serves a spec holding a different detector object."""
        config = _config()
        plan = FaultPlan(
            target_type="stage", target="planning", injection_time=5.0, seed=1
        )
        spec = RunSpec(
            config=config,
            setting="dr_gaussian",
            seed=0,
            fault_plan=plan,
            detector=DETECTOR_GAUSSIAN,
        )
        manager = CheckpointManager()
        first = manager.run_spec(spec, trained_gad)
        other_detector = copy.deepcopy(trained_gad)
        second = manager.run_spec(spec, other_detector)
        assert manager.stats.cursor_restarts == 1
        assert mission_results_equal(first, second)


class TestManagerOrdering:
    def test_out_of_order_fork_restarts_the_cursor(self, monkeypatch):
        config = _config()
        late = FaultPlan(target_type="stage", target="planning", injection_time=7.0, seed=1)
        early = FaultPlan(target_type="stage", target="planning", injection_time=3.0, seed=2)
        spec_late = RunSpec(config=config, setting="injection", seed=0, fault_plan=late)
        spec_early = RunSpec(config=config, setting="injection", seed=0, fault_plan=early)

        ref_late = _scratch(spec_late, monkeypatch=monkeypatch)
        ref_early = _scratch(spec_early, monkeypatch=monkeypatch)

        got_late = execute_spec(spec_late)
        got_early = execute_spec(spec_early)
        stats = checkpoint.checkpoint_stats()
        assert stats.cursor_restarts == 1
        assert mission_result_to_dict(got_late) == mission_result_to_dict(ref_late)
        assert mission_result_to_dict(got_early) == mission_result_to_dict(ref_early)

    def test_cache_friendly_order_groups_prefixes(self):
        config = _config(num_golden=2, num_injections_per_stage=2)
        campaign = Campaign(config)
        specs = campaign.golden_specs() + campaign.stage_injection_specs("injection")
        ordered = cache_friendly_order(specs)
        assert sorted(s.key() for s in ordered) == sorted(s.key() for s in specs)
        # Within each prefix group: ascending activation times, golden last.
        seen_groups = []
        for spec in ordered:
            group = spec.prefix_key()
            if not seen_groups or seen_groups[-1][0] != group:
                seen_groups.append((group, []))
            activation = (
                spec.fault_plan.injection_time
                if spec.fault_plan is not None
                else float("inf")
            )
            seen_groups[-1][1].append(activation)
        assert len(seen_groups) == len({s.prefix_key() for s in specs})
        for _, activations in seen_groups:
            assert activations == sorted(activations)

    def test_prefix_key_shared_by_golden_and_injections(self):
        config = _config()
        golden = RunSpec(config=config, setting=RunSetting.GOLDEN, seed=0)
        plan = FaultPlan(target_type="stage", target="planning", injection_time=5.0)
        injected = RunSpec(config=config, setting="injection", seed=0, fault_plan=plan)
        assert golden.prefix_key() == injected.prefix_key()
        # Different seed or detector means a different prefix.
        other_seed = RunSpec(config=config, setting=RunSetting.GOLDEN, seed=1)
        with_detector = RunSpec(
            config=config, setting="dr", seed=0, detector=DETECTOR_GAUSSIAN
        )
        assert golden.prefix_key() != other_seed.prefix_key()
        assert golden.prefix_key() != with_detector.prefix_key()


class TestEscapeHatches:
    def test_no_checkpoint_env_disables_forking(self, monkeypatch):
        monkeypatch.setenv(checkpoint.NO_CHECKPOINT_ENV, "1")
        assert not checkpointing_enabled()
        config = _config()
        plan = FaultPlan(target_type="stage", target="planning", injection_time=5.0)
        spec = RunSpec(config=config, setting="injection", seed=0, fault_plan=plan)
        execute_spec(spec)
        stats = checkpoint.checkpoint_stats()
        assert stats.forks == 0 and stats.cursors_built == 0

    def test_verify_env_cross_checks_forks(self, monkeypatch):
        monkeypatch.setenv(checkpoint.CHECKPOINT_VERIFY_ENV, "1")
        assert verification_enabled()
        config = _config()
        plan = FaultPlan(target_type="stage", target="planning", injection_time=5.0)
        spec = RunSpec(config=config, setting="injection", seed=0, fault_plan=plan)
        # A correct engine passes verification silently.
        result = execute_spec(spec)
        assert checkpoint.checkpoint_stats().forks == 1
        assert result.setting == "injection"

    def test_no_cache_env_disables_world_cache(self, monkeypatch):
        monkeypatch.setenv(builder.NO_CACHE_ENV, "1")
        a = builder.world_for("farm", 0)
        b = builder.world_for("farm", 0)
        assert a is not b
        monkeypatch.delenv(builder.NO_CACHE_ENV)
        c = builder.world_for("farm", 0)
        assert builder.world_for("farm", 0) is c


class TestConstructionCaches:
    def test_world_cache_shares_instances_per_key(self):
        a = builder.world_for("farm", 0)
        assert builder.world_for("farm", 0) is a
        assert builder.world_for("farm", 1) is not a
        stats = builder.world_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 2

    def test_build_pipeline_uses_the_world_cache(self):
        config = PipelineConfig(environment="farm", seed=0, mission_time_limit=60.0)
        first = build_pipeline(config)
        second = build_pipeline(config)
        assert first.world is second.world

    def test_detector_fork_does_not_leak_state_between_runs(
        self, monkeypatch, trained_gad, trained_aad
    ):
        """Regression: per-run detector state must not leak run-to-run.

        The serial path used to deep-copy the detector per run; it now forks
        it.  Running the same D&R spec repeatedly from one live detector
        object must keep producing the fresh-detector result.
        """
        config = _config()
        detectors = {
            DETECTOR_GAUSSIAN: trained_gad,
            DETECTOR_AUTOENCODER: trained_aad,
        }
        for tag in (DETECTOR_GAUSSIAN, DETECTOR_AUTOENCODER):
            plan = FaultPlan(
                target_type="stage", target="control", injection_time=4.5, seed=9
            )
            spec = RunSpec(
                config=config, setting=f"dr_{tag}", seed=0, fault_plan=plan, detector=tag
            )
            reference = _scratch(spec, detectors, monkeypatch=monkeypatch)
            first = execute_spec(spec, detectors)
            second = execute_spec(spec, detectors)
            assert mission_result_to_dict(first) == mission_result_to_dict(reference)
            assert mission_result_to_dict(second) == mission_result_to_dict(reference)

    def test_gad_fork_matches_deepcopy_semantics(self, trained_gad):
        fork = trained_gad.fork_for_run()
        assert fork is not trained_gad
        for feature, cgad in trained_gad.detectors.items():
            forked = fork.detectors[feature]
            assert forked is not cgad
            assert forked.model.count == cgad.model.count
            assert forked.model.mean == cgad.model.mean
            assert forked.model.std == cgad.model.std
        # Mutating the fork leaves the source untouched.
        any_feature = next(iter(fork.detectors))
        fork.detectors[any_feature].model.update(1e9)
        assert fork.detectors[any_feature].model.count != (
            trained_gad.detectors[any_feature].model.count
        )

    def test_aad_fork_shares_network_but_not_window(self, trained_aad):
        fork = trained_aad.fork_for_run()
        assert fork.autoencoder is trained_aad.autoencoder
        assert fork.threshold == trained_aad.threshold
        fork._latest_deltas["waypoint_x"] = 3.0
        fork.alarm_count = 5
        assert trained_aad._latest_deltas.get("waypoint_x") is None
        assert trained_aad.alarm_count == 0


class TestAbortGrace:
    def _stuck_pipeline(self, time_limit=3.0):
        """A pipeline whose mission never self-terminates (runner must abort)."""
        config = PipelineConfig(
            environment="farm", seed=0, mission_time_limit=time_limit
        )
        handles = build_pipeline(config)
        # Disable the vehicle-side time-limit check so only the runner's hard
        # limit can end the mission.
        handles.airsim.mission.time_limit = float("inf")
        handles.airsim.mission.goal_tolerance = 0.0
        return handles

    def test_runner_abort_grace_is_configurable(self):
        for grace in (0.0, 2.0):
            handles = self._stuck_pipeline(time_limit=3.0)
            runner = MissionRunner(handles, abort_grace=grace)
            result = runner.run()
            assert result.outcome.reason == "runner time limit"
            assert result.flight_time == pytest.approx(3.0 + grace, abs=0.5)

    def test_runner_rejects_negative_grace(self, built_pipeline):
        with pytest.raises(ValueError):
            MissionRunner(built_pipeline, abort_grace=-1.0)

    def test_campaign_config_carries_abort_grace_into_key(self):
        base = RunSpec(config=_config(), setting="golden", seed=0)
        custom = RunSpec(config=_config(abort_grace=9.0), setting="golden", seed=0)
        assert base.key() != custom.key()
        assert base.prefix_key() != custom.prefix_key()

    def test_abort_grace_reaches_the_runner_through_the_engine(self, monkeypatch):
        captured = {}
        original_init = MissionRunner.__init__

        def spy(self, handles, time_step=0.25, abort_grace=5.0):
            captured["abort_grace"] = abort_grace
            original_init(self, handles, time_step=time_step, abort_grace=abort_grace)

        monkeypatch.setattr(MissionRunner, "__init__", spy)
        spec = RunSpec(config=_config(abort_grace=7.5), setting="golden", seed=0)
        execute_spec(spec)
        assert captured["abort_grace"] == 7.5


class TestEndToEndEquivalence:
    def test_full_evaluation_identical_across_engines(self, monkeypatch, tmp_path):
        """Serial scratch / serial cached+checkpointed / {1,2,4}-worker
        parallel / store-resumed streams are all bit-identical, and the
        prefix-affinity scheduler never rebuilds a golden prefix."""
        config = CampaignConfig(
            environment="farm",
            num_golden=2,
            num_injections_per_stage=1,
            mission_time_limit=60.0,
            training_environments=2,
            detector_cache_dir=tmp_path / "cache",
        )

        monkeypatch.setenv(checkpoint.NO_CHECKPOINT_ENV, "1")
        monkeypatch.setenv(builder.NO_CACHE_ENV, "1")
        scratch = Campaign(config).full_evaluation(executor=SerialExecutor())
        monkeypatch.delenv(checkpoint.NO_CHECKPOINT_ENV)
        monkeypatch.delenv(builder.NO_CACHE_ENV)

        checkpoint.reset_checkpoint_caches()
        builder.reset_world_cache()
        cached = Campaign(config).full_evaluation(executor=SerialExecutor())
        assert checkpoint.checkpoint_stats().forks > 0

        parallel_runs = {}
        for workers in (1, 2, 4):
            checkpoint.reset_checkpoint_caches()
            executor = ParallelExecutor(workers=workers)
            parallel_runs[workers] = Campaign(config).full_evaluation(
                executor=executor
            )
            # The scheduler's invariant: whole prefix groups per worker, so
            # no golden prefix is ever flown twice across the fleet.
            assert executor.last_checkpoint_stats is not None
            assert executor.last_checkpoint_stats.duplicate_cursor_builds == 0

        store = JsonlResultStore(tmp_path / "results.jsonl")
        streamed = Campaign(config).full_evaluation(
            executor=SerialExecutor(), store=store
        )
        # Interrupt-and-resume: drop the tail of the store and re-run; the
        # resumed stream must splice stored and freshly-forked results into
        # the same record sequence.
        raw = store.path.read_text().splitlines(keepends=True)
        store.path.write_text("".join(raw[: len(raw) // 2]))
        checkpoint.reset_checkpoint_caches()
        resumed = Campaign(config).full_evaluation(
            executor=SerialExecutor(), store=store
        )

        assert scratch.settings() == cached.settings()
        for runs in parallel_runs.values():
            assert runs.settings() == scratch.settings()
        for setting in scratch.settings():
            reference = scratch.results(setting)
            others = (cached, streamed, resumed, *parallel_runs.values())
            for other in others:
                candidate = other.results(setting)
                assert len(candidate) == len(reference)
                for left, right in zip(reference, candidate):
                    assert mission_results_equal(left, right)


# Shared by TestCursorRoundTrip (module-level so the helper stays terse).
config_time_step = CampaignConfig().time_step
