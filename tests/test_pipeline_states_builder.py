"""Tests for the inter-kernel state registry, pipeline builder and mission runner."""

import numpy as np
import pytest

from repro import topics
from repro.pipeline.builder import PipelineConfig, build_pipeline
from repro.pipeline.runner import MissionRunner
from repro.pipeline.states import (
    INTER_KERNEL_STATES,
    MONITORED_FEATURES,
    MONITORED_TOPICS,
    extract_feature_samples,
    feature_vector_size,
    state_by_name,
    stage_of_topic,
)
from repro.platforms.compute import get_platform
from repro.rosmw.message import (
    CollisionCheckMsg,
    FlightCommandMsg,
    MultiDOFTrajectoryMsg,
    Waypoint,
)
from repro.sim.world import World


class TestStateRegistry:
    def test_thirteen_monitored_features(self):
        assert feature_vector_size() == 13
        assert len(MONITORED_FEATURES) == 13

    def test_every_stage_has_states(self):
        stages = {state.stage for state in INTER_KERNEL_STATES}
        assert stages == {"perception", "planning", "control"}

    def test_state_lookup(self):
        state = state_by_name("time_to_collision")
        assert state.topic == topics.COLLISION_CHECK
        with pytest.raises(KeyError):
            state_by_name("nonexistent")

    def test_stage_of_topic(self):
        assert stage_of_topic(topics.COLLISION_CHECK) == "perception"
        assert stage_of_topic(topics.TRAJECTORY) == "planning"
        assert stage_of_topic(topics.FLIGHT_COMMAND) == "control"
        with pytest.raises(KeyError):
            stage_of_topic("/unknown")

    def test_extract_collision_check_sample(self):
        samples = extract_feature_samples(
            topics.COLLISION_CHECK,
            CollisionCheckMsg(time_to_collision=3.0, future_collision_seq=2),
        )
        assert len(samples) == 1
        assert samples[0]["time_to_collision"] == 3.0
        assert samples[0]["future_collision_seq"] == 2.0

    def test_extract_clamps_infinite_ttc(self):
        samples = extract_feature_samples(
            topics.COLLISION_CHECK, CollisionCheckMsg(time_to_collision=float("inf"))
        )
        assert np.isfinite(samples[0]["time_to_collision"])

    def test_extract_trajectory_one_sample_per_waypoint(self):
        msg = MultiDOFTrajectoryMsg(waypoints=[Waypoint(x=1.0), Waypoint(x=2.0), Waypoint(x=3.0)])
        samples = extract_feature_samples(topics.TRAJECTORY, msg)
        assert len(samples) == 3
        assert samples[1]["waypoint_x"] == 2.0

    def test_extract_flight_command(self):
        samples = extract_feature_samples(
            topics.FLIGHT_COMMAND, FlightCommandMsg(vx=1.0, yaw_rate=0.2)
        )
        assert samples[0]["command_vx"] == 1.0
        assert samples[0]["command_yaw_rate"] == 0.2

    def test_unmonitored_topic_yields_nothing(self):
        assert extract_feature_samples("/sensors/imu", FlightCommandMsg()) == []

    def test_monitored_topics_cover_all_states(self):
        assert set(MONITORED_TOPICS) == {state.topic for state in INTER_KERNEL_STATES}


class TestBuilder:
    def test_builds_all_kernels(self, built_pipeline):
        expected = {
            "point_cloud_generation",
            "octomap_generation",
            "collision_check",
            "mission_planner",
            "motion_planner",
            "pid_control",
        }
        assert set(built_pipeline.kernels) == expected
        assert built_pipeline.graph.has_node("airsim_interface")

    def test_stage_kernels(self, built_pipeline):
        assert len(built_pipeline.stage_kernels("perception")) == 3
        assert len(built_pipeline.stage_kernels("planning")) == 2
        assert len(built_pipeline.stage_kernels("control")) == 1

    def test_graph_not_started(self, built_pipeline):
        assert all(not node.alive for node in built_pipeline.graph.nodes)

    def test_platform_latencies_applied(self):
        i9 = build_pipeline(PipelineConfig(environment="farm", platform="i9"))
        tx2 = build_pipeline(PipelineConfig(environment="farm", platform="tx2"))
        assert tx2.kernels["octomap_generation"].latency > i9.kernels["octomap_generation"].latency
        assert tx2.kernels["octomap_generation"].latency == pytest.approx(
            get_platform("tx2").kernel_latency("octomap_generation")
        )

    def test_platform_velocity_derating(self):
        i9 = build_pipeline(PipelineConfig(environment="farm", platform="i9"))
        tx2 = build_pipeline(PipelineConfig(environment="farm", platform="tx2"))
        assert (
            tx2.airsim.vehicle.params.max_speed < i9.airsim.vehicle.params.max_speed
        )

    def test_custom_world_accepted(self):
        world = World(name="custom")
        handles = build_pipeline(PipelineConfig(environment=world, start_jitter_std=0.0))
        assert handles.world is world

    def test_planner_choice_propagates(self):
        handles = build_pipeline(PipelineConfig(environment="farm", planner_name="rrt_connect"))
        assert handles.kernels["motion_planner"].config.planner_name == "rrt_connect"

    def test_start_jitter_varies_with_seed(self):
        a = build_pipeline(PipelineConfig(environment="farm", seed=1))
        b = build_pipeline(PipelineConfig(environment="farm", seed=2))
        assert not np.allclose(a.airsim.mission.start, b.airsim.mission.start)

    def test_kernel_lookup(self, built_pipeline):
        assert built_pipeline.kernel("pid_control").stage == "control"


class TestMissionRunner:
    def test_farm_mission_succeeds(self, built_pipeline):
        result = MissionRunner(built_pipeline).run(setting="golden", seed=0)
        assert result.success
        assert result.outcome.reason == "goal reached"
        assert result.flight_time > 5.0
        assert result.mission_energy > result.flight_energy > 0
        assert result.distance_travelled > 40.0
        assert result.environment == "farm"
        assert result.platform == "i9"
        assert len(result.trajectory) > 5

    def test_compute_accounting_collected(self, built_pipeline):
        result = MissionRunner(built_pipeline).run(setting="golden", seed=0)
        assert "octomap_generation" in result.compute_time
        assert result.total_compute_time > 0
        assert "octomap_generation" in result.categories_by_node

    def test_replan_count_recorded(self, built_pipeline):
        result = MissionRunner(built_pipeline).run(setting="golden", seed=0)
        assert result.replan_count >= 1

    def test_time_limit_enforced(self):
        config = PipelineConfig(environment="farm", seed=0, mission_time_limit=3.0)
        handles = build_pipeline(config)
        result = MissionRunner(handles).run(setting="golden", seed=0)
        assert not result.success
        assert result.outcome.timeout
        assert result.flight_time <= 3.5
