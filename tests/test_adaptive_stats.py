"""Property tests for the statistics layer behind the adaptive driver.

The adaptive campaign driver early-stops sampling cells on Wilson/bootstrap
confidence intervals, so the statistical machinery has to be trustworthy
before the driver's budget savings mean anything.  This module pins:

* half-widths shrink (monotonically in expectation) as sample sizes grow,
  for both the closed-form Wilson interval and the seeded bootstrap;
* coverage sanity on Bernoulli fixtures with known ``p``;
* ``bootstrap_ci`` degenerate pools (0/1 samples, all-identical values);
* the canonical :func:`repro.core.qof.derive_seed` derivation -- free of
  separator ambiguity and insensitive to which *other* keys exist, so adding
  a cell or report group can never perturb another cell's resamples.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.report import GroupKey, _group_seed
from repro.core.qof import (
    ConfidenceInterval,
    bootstrap_ci,
    derive_seed,
    wilson_interval,
)


class TestConfidenceIntervalGeometry:
    def test_half_width_and_contains(self):
        ci = ConfidenceInterval(value=0.5, lower=0.25, upper=0.85, samples=10, confidence=0.95)
        assert ci.half_width == pytest.approx(0.3)
        assert ci.contains(0.25) and ci.contains(0.85) and ci.contains(0.5)
        assert not ci.contains(0.24) and not ci.contains(0.86)

    def test_overlaps_is_symmetric(self):
        a = ConfidenceInterval(value=0.4, lower=0.2, upper=0.6, samples=5, confidence=0.95)
        b = ConfidenceInterval(value=0.7, lower=0.55, upper=0.9, samples=5, confidence=0.95)
        c = ConfidenceInterval(value=0.95, lower=0.91, upper=1.0, samples=5, confidence=0.95)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c) and not c.overlaps(a)
        # Shared endpoint counts as overlap.
        d = ConfidenceInterval(value=0.8, lower=0.6, upper=1.0, samples=5, confidence=0.95)
        assert a.overlaps(d) and d.overlaps(a)


class TestWilsonInterval:
    def test_empty_sample_is_nan(self):
        ci = wilson_interval(0, 0)
        assert math.isnan(ci.value) and math.isnan(ci.lower) and math.isnan(ci.upper)
        assert ci.samples == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(-1, 4)
        with pytest.raises(ValueError):
            wilson_interval(1, -4)
        with pytest.raises(ValueError):
            wilson_interval(1, 4, confidence=1.0)
        with pytest.raises(ValueError):
            wilson_interval(1, 4, confidence=0.0)

    @given(
        num_runs=st.integers(min_value=1, max_value=500),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_interval_brackets_the_estimate(self, num_runs, data):
        num_success = data.draw(st.integers(min_value=0, max_value=num_runs))
        ci = wilson_interval(num_success, num_runs)
        phat = num_success / num_runs
        assert ci.value == pytest.approx(phat)
        assert 0.0 <= ci.lower <= phat <= ci.upper <= 1.0
        assert ci.samples == num_runs

    @given(
        num_runs=st.integers(min_value=1, max_value=250),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_half_width_shrinks_with_sample_size(self, num_runs, data):
        """4x the evidence at the same rate => strictly narrower interval.

        This is the driver's early-stopping power rule: a cell that keeps its
        success rate while accumulating runs must converge, so budget always
        flows onward eventually.
        """
        num_success = data.draw(st.integers(min_value=0, max_value=num_runs))
        small = wilson_interval(num_success, num_runs)
        large = wilson_interval(4 * num_success, 4 * num_runs)
        assert large.half_width < small.half_width

    def test_half_width_monotone_along_fixed_rate_ladder(self):
        widths = [wilson_interval(k, 2 * k).half_width for k in (1, 2, 4, 8, 16, 32)]
        assert widths == sorted(widths, reverse=True)

    @given(confidence=st.floats(min_value=0.5, max_value=0.995))
    @settings(max_examples=25, deadline=None)
    def test_wider_confidence_wider_interval(self, confidence):
        narrow = wilson_interval(7, 10, confidence=confidence)
        wide = wilson_interval(7, 10, confidence=0.999)
        assert wide.half_width >= narrow.half_width

    def test_coverage_on_known_bernoulli(self):
        """Deterministic coverage sanity: ~95% of intervals contain p."""
        p = 0.3
        num_runs = 50
        datasets = 400
        rng = np.random.default_rng(1234)
        covered = 0
        for _ in range(datasets):
            successes = int(rng.binomial(num_runs, p))
            if wilson_interval(successes, num_runs, confidence=0.95).contains(p):
                covered += 1
        coverage = covered / datasets
        # The Wilson interval's coverage oscillates around the nominal level;
        # the assertion is a (generous, fully seeded) sanity band, not an
        # exact calibration claim.
        assert 0.88 <= coverage <= 1.0


class TestBootstrapHalfWidths:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_half_width_shrinks_in_expectation(self, seed):
        """Mean bootstrap half-width over seeds shrinks from n to 4n."""
        rng = np.random.default_rng(seed)
        population = rng.normal(10.0, 2.0, size=400)
        small_widths = []
        large_widths = []
        for offset in range(8):
            small = population[: 25]
            large = population[: 100]
            small_widths.append(
                bootstrap_ci(small, np.mean, n_resamples=200, seed=offset).half_width
            )
            large_widths.append(
                bootstrap_ci(large, np.mean, n_resamples=200, seed=offset).half_width
            )
        assert float(np.mean(large_widths)) < float(np.mean(small_widths))

    def test_degenerate_pools_pinned(self):
        """0/1 samples -> NaN interval; identical values -> zero width."""
        empty = bootstrap_ci([], np.mean)
        assert math.isnan(empty.value) and math.isnan(empty.lower)
        assert empty.samples == 0

        single = bootstrap_ci([3.5], np.mean)
        assert math.isnan(single.lower) and math.isnan(single.upper)
        assert single.samples == 1

        identical = bootstrap_ci([2.0] * 12, np.mean)
        assert identical.value == pytest.approx(2.0)
        assert identical.lower == pytest.approx(2.0)
        assert identical.upper == pytest.approx(2.0)
        assert identical.half_width == pytest.approx(0.0)

    def test_bootstrap_coverage_on_known_bernoulli(self):
        """Seeded bootstrap CI on Bernoulli(p) means covers p most of the time."""
        p = 0.4
        rng = np.random.default_rng(99)
        covered = 0
        datasets = 100
        for i in range(datasets):
            flags = rng.binomial(1, p, size=60).astype(float)
            ci = bootstrap_ci(sorted(flags), np.mean, n_resamples=300, seed=i)
            if ci.lower <= p <= ci.upper:
                covered += 1
        assert covered / datasets >= 0.80


class TestDeriveSeed:
    def test_deterministic_and_in_range(self):
        a = derive_seed("adaptive", "injection", "planning")
        assert a == derive_seed("adaptive", "injection", "planning")
        assert 0 <= a < 2**31

    def test_separator_ambiguity_resolved(self):
        """The historical '|'.join scheme collided on these; sha-of-JSON-list
        must not."""
        assert derive_seed("a|b", "c") != derive_seed("a", "b|c")
        assert derive_seed("a", "b", "c") != derive_seed("a|b", "c")
        assert derive_seed("ab", "c") != derive_seed("a", "bc")

    def test_base_offsets_stream(self):
        assert derive_seed("x", base=0) != derive_seed("x", base=1)

    def test_independent_of_other_keys(self):
        """A key's seed depends only on its own parts: adding a cell to a
        campaign can never perturb another cell's resamples."""
        before = derive_seed("cell", "injection", "planning", "3")
        # "Add" arbitrarily many other cells -- derive their seeds too.
        for stage in ("perception", "control", "ekf", "imu"):
            derive_seed("cell", "injection", stage, "3")
        after = derive_seed("cell", "injection", "planning", "3")
        assert before == after

    @given(
        parts=st.lists(st.text(min_size=0, max_size=8), min_size=1, max_size=4),
        base=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=50, deadline=None)
    def test_always_a_valid_rng_seed(self, parts, base):
        seed = derive_seed(*parts, base=base)
        assert 0 <= seed < 2**31
        np.random.default_rng(seed)  # must be accepted verbatim

    def test_report_group_seed_uses_canonical_derivation(self):
        """Regression for the report layer's group-seed fix: group seeds are
        the canonical derivation, so ambiguous name splits cannot collide."""
        base = 7
        key = GroupKey(setting="injection", scenario="windy-a", environment="farm")
        assert _group_seed(base, key) == derive_seed(
            "report-group", "injection", "windy-a", "farm", base=base
        )
        shifted = GroupKey(setting="injection", scenario="windy", environment="a|farm")
        assert _group_seed(base, key) != _group_seed(base, shifted)
