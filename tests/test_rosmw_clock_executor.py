"""Tests for the simulated clock and the deterministic executor."""

import pytest

from repro.rosmw.clock import SimClock
from repro.rosmw.exceptions import ClockError
from repro.rosmw.node import Node


class TickerNode(Node):
    """Records the simulated times at which its timer fires."""

    def __init__(self, name="ticker", period=0.5, offset=0.0):
        super().__init__(name)
        self.period = period
        self.offset = offset
        self.fired_at = []

    def on_start(self):
        self.create_timer(self.period, self._tick, offset=self.offset)

    def _tick(self):
        self.fired_at.append(self.graph.clock.now)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_starts_at_custom_time(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            SimClock(-1.0)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_advance_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(ClockError):
            clock.advance(-0.1)

    def test_set_forward(self):
        clock = SimClock()
        clock.set(3.0)
        assert clock.now == 3.0

    def test_set_backwards_rejected(self):
        clock = SimClock(4.0)
        with pytest.raises(ClockError):
            clock.set(2.0)

    def test_reset(self):
        clock = SimClock(9.0)
        clock.reset()
        assert clock.now == 0.0


class TestExecutor:
    def test_timer_fires_at_multiples_of_period(self, graph):
        node = TickerNode(period=0.5)
        graph.add_node(node)
        graph.start_all()
        graph.spin_until(2.0)
        assert node.fired_at == pytest.approx([0.5, 1.0, 1.5, 2.0])

    def test_timer_offset_shifts_first_fire(self, graph):
        node = TickerNode(period=1.0, offset=0.25)
        graph.add_node(node)
        graph.start_all()
        graph.spin_until(2.5)
        assert node.fired_at == pytest.approx([1.25, 2.25])

    def test_clock_advances_to_target_even_without_timers(self, graph):
        graph.start_all()
        graph.spin_until(7.5)
        assert graph.clock.now == pytest.approx(7.5)

    def test_two_timers_fire_in_time_order(self, graph):
        order = []
        fast = TickerNode("fast", period=0.3)
        slow = TickerNode("slow", period=0.7)
        graph.add_nodes([fast, slow])
        graph.start_all()

        fast._tick = lambda: order.append(("fast", graph.clock.now))
        slow._tick = lambda: order.append(("slow", graph.clock.now))
        # Re-register timers with the patched callbacks.
        graph.executor.clear()
        fast.create_timer(0.3, fast._tick)
        slow.create_timer(0.7, slow._tick)

        graph.spin_until(1.5)
        times = [t for _, t in order]
        assert times == sorted(times)

    def test_cancelled_timer_does_not_fire(self, graph):
        node = TickerNode(period=0.5)
        graph.add_node(node)
        graph.start_all()
        graph.spin_until(0.6)
        assert len(node.fired_at) == 1
        node._timers[0].cancel()
        graph.spin_until(3.0)
        assert len(node.fired_at) == 1

    def test_timer_of_dead_node_does_not_fire(self, graph):
        node = TickerNode(period=0.5)
        graph.add_node(node)
        graph.start_all()
        node.shutdown()
        graph.spin_until(2.0)
        assert node.fired_at == []

    def test_spin_returns_number_of_fired_callbacks(self, graph):
        node = TickerNode(period=0.25)
        graph.add_node(node)
        graph.start_all()
        fired = graph.spin_until(1.0)
        assert fired == 4

    def test_invalid_timer_period_rejected(self, graph):
        node = TickerNode()
        graph.add_node(node)
        node.alive = True
        with pytest.raises(ValueError):
            node.create_timer(0.0, lambda: None)
