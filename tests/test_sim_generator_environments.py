"""Tests for the environment generator and the evaluation environments."""

import numpy as np
import pytest

from repro.sim.environments import (
    ENVIRONMENT_NAMES,
    EXTENDED_ENVIRONMENT_NAMES,
    environment_spec,
    make_environment,
    make_training_environment,
)
from repro.sim.generator import EnvironmentGenerator, GeneratorConfig, corridor_walls


class TestEnvironmentGenerator:
    def test_deterministic_for_same_seed(self):
        gen = EnvironmentGenerator(GeneratorConfig(obstacle_density=0.1, cuboid_side=6))
        a = gen.generate(seed=3)
        b = gen.generate(seed=3)
        assert a.num_obstacles == b.num_obstacles
        assert np.allclose(a.obstacles[0].center, b.obstacles[0].center)

    def test_different_seeds_differ(self):
        gen = EnvironmentGenerator(GeneratorConfig(obstacle_density=0.1, cuboid_side=6))
        a = gen.generate(seed=1)
        b = gen.generate(seed=2)
        centers_a = np.array([o.center for o in a.obstacles])
        centers_b = np.array([o.center for o in b.obstacles])
        assert centers_a.shape != centers_b.shape or not np.allclose(centers_a, centers_b)

    def test_density_scales_obstacle_count(self):
        sparse = EnvironmentGenerator(
            GeneratorConfig(obstacle_density=0.05, cuboid_side=6)
        ).generate(seed=0)
        dense = EnvironmentGenerator(
            GeneratorConfig(obstacle_density=0.2, cuboid_side=6)
        ).generate(seed=0)
        assert dense.num_obstacles > sparse.num_obstacles

    def test_start_and_goal_kept_clear(self):
        gen = EnvironmentGenerator(GeneratorConfig(obstacle_density=0.2, cuboid_side=8))
        world = gen.generate(seed=5, start=(0, 0, 1), goal=(55, 0, 2))
        assert world.distance_to_nearest((0, 0, 1)) > 1.0
        assert world.distance_to_nearest((55, 0, 2)) > 1.0

    def test_obstacles_within_bounds(self):
        gen = EnvironmentGenerator(GeneratorConfig(obstacle_density=0.15, cuboid_side=6))
        world = gen.generate(seed=7)
        lo = np.asarray(world.bounds_lo)
        hi = np.asarray(world.bounds_hi)
        for obstacle in world.obstacles:
            assert np.all(np.asarray(obstacle.lo) >= lo - 1e-6)
            assert np.all(np.asarray(obstacle.hi) <= hi + 1e-6)

    def test_achieved_density_matches_target(self):
        # Regression: overlapping footprints used to be double-counted toward
        # the density target, so the generated worlds were systematically
        # sparser than requested.  The achieved (union) density must now land
        # near the target for dense configurations where overlaps are common.
        for seed in (0, 1, 2):
            gen = EnvironmentGenerator(
                GeneratorConfig(obstacle_density=0.2, cuboid_side=10)
            )
            world = gen.generate(seed=seed)
            assert gen.achieved_density == pytest.approx(0.2, abs=0.04)
            # The world's own footprint-coverage diagnostic must agree with
            # the generator's accounting (same union, coarser sampling).
            assert world.occupied_fraction(resolution=1.0) == pytest.approx(
                gen.achieved_density, abs=0.05
            )

    def test_keep_out_uses_per_axis_extents(self):
        # Regression: the start/goal keep-out test used side_x for both axes.
        # With an extreme aspect ratio (side_y >> side_x via jitter is not
        # reachable, so exercise the footprint math directly): every accepted
        # obstacle's footprint rectangle must stay protected_radius clear of
        # both endpoints.
        cfg = GeneratorConfig(obstacle_density=0.25, cuboid_side=9, side_jitter=0.4)
        gen = EnvironmentGenerator(cfg)
        start, goal = (0.0, 0.0, 1.0), (55.0, 0.0, 2.0)
        world = gen.generate(seed=11, start=start, goal=goal)
        for obstacle in world.obstacles:
            for point in (start, goal):
                gap = np.maximum(
                    np.abs(obstacle.center[:2] - np.asarray(point[:2]))
                    - obstacle.size[:2] / 2,
                    0.0,
                )
                assert float(np.linalg.norm(gap)) >= cfg.protected_radius - 1e-9

    def test_corridor_walls_leave_gap(self):
        walls = corridor_walls((0, -20, 0), (60, 20, 10), [30.0], [0.0], gap_width=8.0)
        assert len(walls) == 2
        # The gap around y=0 must be free.
        for wall in walls:
            assert not wall.contains((30.0, 0.0, 3.0))


class TestEvaluationEnvironments:
    @pytest.mark.parametrize("name", ENVIRONMENT_NAMES)
    def test_all_environments_build(self, name):
        world = make_environment(name, seed=0)
        assert world.name == name

    def test_unknown_environment_rejected(self):
        with pytest.raises(KeyError):
            make_environment("mars")

    def test_spec_lookup_case_insensitive(self):
        assert environment_spec("Dense").name == "dense"

    def test_dense_has_more_coverage_than_sparse(self):
        dense = make_environment("dense", seed=0)
        sparse = make_environment("sparse", seed=0)
        dense_area = sum(o.size[0] * o.size[1] for o in dense.obstacles)
        sparse_area = sum(o.size[0] * o.size[1] for o in sparse.obstacles)
        assert dense_area > sparse_area

    def test_farm_is_effectively_obstacle_free_on_the_corridor(self):
        farm = make_environment("farm", seed=0)
        # The straight start-goal corridor must be clear of hedges.
        assert not farm.segment_collides((0, 0, 1.5), (55, 0, 2.0), inflation=1.0)

    def test_factory_contains_walls(self):
        factory = make_environment("factory", seed=0)
        assert any("wall" in o.name for o in factory.obstacles)

    def test_environment_deterministic_by_seed(self):
        a = make_environment("dense", seed=4)
        b = make_environment("dense", seed=4)
        assert a.num_obstacles == b.num_obstacles

    @pytest.mark.parametrize(
        "name", [n for n in EXTENDED_ENVIRONMENT_NAMES if n not in ENVIRONMENT_NAMES]
    )
    def test_extended_environments_build(self, name):
        world = make_environment(name, seed=0)
        assert world.name == name
        assert world.num_obstacles > 0
        # The mission endpoints stay flyable in every family.
        assert world.distance_to_nearest((0, 0, 1.5)) > 1.0
        assert world.distance_to_nearest((55, 0, 2.0)) > 1.0

    def test_forest_has_many_thin_obstacles(self):
        forest = make_environment("forest", seed=0)
        assert forest.num_obstacles > 50
        widths = [max(o.size[0], o.size[1]) for o in forest.obstacles]
        assert max(widths) < 2.0

    def test_urban_canyon_leaves_a_street(self):
        canyon = make_environment("urban_canyon", seed=0)
        assert any("building" in o.name for o in canyon.obstacles)
        # The canyon centreline at street level is never fully walled off:
        # some lateral position is free at every x slice.
        for x in np.linspace(2.0, 52.0, 26):
            free = any(
                not canyon.point_collides((x, y, 2.0), inflation=0.4)
                for y in np.linspace(-6.0, 6.0, 25)
            )
            assert free, f"no free lateral position at x={x:.1f}"

    def test_training_environments_vary(self):
        worlds = [make_training_environment(i) for i in range(4)]
        counts = {w.num_obstacles for w in worlds}
        assert len(counts) > 1

    def test_training_environment_deterministic(self):
        a = make_training_environment(5)
        b = make_training_environment(5)
        assert a.num_obstacles == b.num_obstacles

    def test_some_training_environments_have_walls(self):
        walled = [
            w
            for w in (make_training_environment(i) for i in range(6))
            if any("wall" in o.name for o in w.obstacles)
        ]
        assert walled
