"""Tests for the streaming paper-report engine and the detection metrics.

Covers the ISSUE-5 acceptance criteria: shard-order-invariant byte-identical
``report.json``, JSONL round-trip of the first-alarm fields (including
pre-format-bump records), detection-metrics sanity on a smoke campaign with
known injections (golden runs contribute FPR only, injected runs TPR), and
the ``repro-report-v1`` validator.
"""

from __future__ import annotations

import json
import math
from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.detection_metrics import (
    detection_accuracy,
    detector_label,
    format_detection_accuracy_table,
)
from repro.analysis.report import (
    REPORT_SCHEMA,
    StreamingAggregator,
    build_report,
    render_report,
    validate_report,
    write_report,
)
from repro.cli import main
from repro.core.qof import bootstrap_ci, qof_confidence_intervals
from repro.core.results import (
    JsonlResultStore,
    mission_result_from_dict,
    mission_result_to_dict,
)
from repro.pipeline.runner import MissionResult
from repro.sim.airsim import FlightOutcome


# --------------------------------------------------------------- fixtures
@pytest.fixture(scope="module")
def campaign_store(tmp_path_factory):
    """A smoke campaign with known injections streamed to one JSONL shard.

    Golden + unprotected injections + D&R(Gaussian/Autoencoder) injections +
    the detector-on-golden false-positive settings, all in the farm
    environment with a 1-environment detector training run (cached).
    """
    tmp = tmp_path_factory.mktemp("report-campaign")
    out = tmp / "results.jsonl"
    rc = main(
        [
            "campaign",
            "--env",
            "farm",
            "--settings",
            "golden,injection,dr_gaussian,dr_autoencoder,"
            "dr_golden_gaussian,dr_golden_autoencoder",
            "--golden",
            "3",
            "--per-stage",
            "2",
            "--time-limit",
            "60",
            "--training-envs",
            "1",
            "--cache-dir",
            str(tmp / "cache"),
            "--out",
            str(out),
            "--quiet",
        ]
    )
    assert rc == 0
    return out


def _fake_result(
    setting="dr_gaussian",
    success=True,
    alarms=0,
    checked=100,
    alarms_by_stage=None,
    fault_target="",
    injection_time=None,
    first_alarm_time=None,
    flight_time=12.0,
):
    """A minimal synthetic MissionResult for detection-metric unit tests."""
    return MissionResult(
        success=success,
        flight_time=flight_time,
        mission_energy=1000.0,
        flight_energy=900.0,
        compute_energy=100.0,
        distance_travelled=30.0,
        outcome=FlightOutcome(success=success, flight_time=flight_time),
        environment="farm",
        platform="i9",
        planner="rrt_star",
        setting=setting,
        detection_alarms=alarms,
        detection_alarms_by_stage=alarms_by_stage or {},
        detection_checked_samples=checked,
        first_alarm_time=first_alarm_time,
        injection_time=injection_time,
        fault_target=fault_target,
    )


# ------------------------------------------------------- first-alarm fields
class TestFirstAlarmRoundTrip:
    def test_round_trip_exact(self):
        result = _fake_result(
            alarms=3,
            alarms_by_stage={"planning": 2, "control": 1},
            fault_target="planning",
            injection_time=4.25,
            first_alarm_time=4.75,
        )
        result.first_alarm_time_by_stage = {"planning": 4.75, "control": 5.0}
        data = json.loads(json.dumps(mission_result_to_dict(result)))
        restored = mission_result_from_dict(data)
        assert restored.first_alarm_time == 4.75
        assert restored.first_alarm_time_by_stage == {"planning": 4.75, "control": 5.0}
        assert restored.injection_time == 4.25
        assert mission_result_to_dict(restored) == mission_result_to_dict(result)

    def test_none_round_trips_as_null(self):
        result = _fake_result()
        text = json.dumps(mission_result_to_dict(result))
        assert "NaN" not in text and "Infinity" not in text
        restored = mission_result_from_dict(json.loads(text))
        assert restored.first_alarm_time is None
        assert restored.injection_time is None

    def test_pre_bump_record_loads_with_defaults(self):
        """Version-1 records (no format marker, no timing fields) still load."""
        data = mission_result_to_dict(_fake_result(alarms=2))
        for legacy_missing in (
            "format",
            "first_alarm_time",
            "first_alarm_time_by_stage",
            "injection_time",
        ):
            del data[legacy_missing]
        restored = mission_result_from_dict(data)
        assert restored.detection_alarms == 2
        assert restored.first_alarm_time is None
        assert restored.first_alarm_time_by_stage == {}
        assert restored.injection_time is None

    def test_store_round_trip_from_campaign(self, campaign_store):
        results = JsonlResultStore(campaign_store).load_results()
        injected = [
            r
            for r in results.values()
            if r.fault_target and detector_label(r.setting) is not None
        ]
        assert injected, "campaign must contain detector-attached injections"
        # Every injected run carries its fault activation time.
        assert all(r.injection_time is not None for r in injected)
        # At least one injection raised an alarm whose time round-tripped.
        alarmed = [r for r in injected if r.detection_alarms > 0]
        assert alarmed
        for r in alarmed:
            assert r.first_alarm_time is not None
            assert r.first_alarm_time_by_stage
            assert min(r.first_alarm_time_by_stage.values()) == r.first_alarm_time
        # Fault-free runs have no injection time.
        for r in results.values():
            if not r.fault_target:
                assert r.injection_time is None


# ------------------------------------------------------- detection metrics
class TestDetectionMetrics:
    def test_golden_runs_contribute_fpr_only(self):
        golden = [_fake_result(setting="dr_golden_gaussian", alarms=0)] * 3
        noisy_golden = _fake_result(setting="dr_golden_gaussian", alarms=5)
        injected = [
            _fake_result(
                fault_target="planning",
                alarms=1,
                alarms_by_stage={"planning": 1},
                injection_time=4.0,
                first_alarm_time=4.5,
            ),
            _fake_result(fault_target="planning", injection_time=4.0),
        ]
        acc = detection_accuracy([*golden, noisy_golden], injected, "gaussian")
        assert acc.golden_runs == 4
        assert acc.injected_runs == 2
        assert acc.run_fpr == pytest.approx(0.25)
        assert acc.sample_fpr == pytest.approx(5 / 400)
        assert acc.tpr == pytest.approx(0.5)
        assert acc.precision == pytest.approx(0.5)
        assert acc.mean_time_to_detect == pytest.approx(0.5)
        stage = acc.per_stage["planning"]
        assert stage.injected_runs == 2
        assert stage.detected_runs == 1
        assert stage.localized_runs == 1

    def test_clean_detector_reports_zero_fpr(self):
        acc = detection_accuracy(
            [_fake_result(setting="dr_golden_gaussian")] * 5, [], "gaussian"
        )
        assert acc.run_fpr == 0.0
        assert acc.sample_fpr == 0.0
        assert math.isnan(acc.tpr)

    def test_pre_injection_alarm_is_not_a_detection(self):
        """An alarm that fired before the fault is spurious: it must inflate
        neither the TPR nor the latency statistics."""
        result = _fake_result(
            fault_target="control",
            alarms=1,
            alarms_by_stage={"control": 1},
            injection_time=6.0,
            first_alarm_time=2.0,  # false alarm fired before the fault
        )
        result.first_alarm_time_by_stage = {"control": 2.0}
        acc = detection_accuracy([], [result], "gaussian")
        assert acc.tpr == 0.0
        assert acc.per_stage["control"].localized_runs == 0
        assert math.isnan(acc.mean_time_to_detect)

    def test_late_stage_alarm_still_detects_after_early_false_alarm(self):
        """A pre-injection false alarm followed by a genuine post-injection
        alarm in another stage counts as detected, with the post-injection
        latency."""
        result = _fake_result(
            fault_target="planning",
            alarms=3,
            alarms_by_stage={"control": 1, "planning": 2},
            injection_time=6.0,
            first_alarm_time=2.0,
        )
        result.first_alarm_time_by_stage = {"control": 2.0, "planning": 7.5}
        acc = detection_accuracy([], [result], "gaussian")
        assert acc.tpr == pytest.approx(1.0)
        assert acc.per_stage["planning"].localized_runs == 1
        assert acc.mean_time_to_detect == pytest.approx(1.5)

    def test_detector_label_mapping(self):
        assert detector_label("dr_gaussian") == "gaussian"
        assert detector_label("dr_golden_gaussian") == "gaussian"
        assert detector_label("dr_autoencoder") == "autoencoder"
        assert detector_label("dr_golden_autoencoder") == "autoencoder"
        assert detector_label("golden") is None
        assert detector_label("injection") is None

    def test_table_renders_nan_as_dash(self):
        acc = detection_accuracy([], [], "gaussian")
        text = format_detection_accuracy_table([acc])
        assert "gaussian" in text
        assert "-" in text

    def test_campaign_detection_sanity(self, campaign_store):
        """On the smoke campaign: FPR comes from golden rows, TPR from injections."""
        report = build_report([campaign_store])
        rows = {row["detector"]: row for row in report["detection_accuracy"]}
        assert set(rows) == {"gaussian", "autoencoder"}
        for row in rows.values():
            # dr_golden_* contributed the golden pool, injections the rest.
            assert row["golden_runs"] == 3
            assert row["injected_runs"] == 6
            assert row["golden_checked_samples"] > 0
        # The Gaussian detector catches every planted fault in this campaign.
        assert rows["gaussian"]["tpr"] > 0.0
        # FPR=0 rows are representable (the autoencoder is quiet on golden).
        assert rows["autoencoder"]["run_fpr"] == 0.0


# ------------------------------------------------------------ report engine
class TestStreamingAggregator:
    def test_identical_duplicates_counted_once(self, tmp_path, campaign_store):
        lines = campaign_store.read_text().splitlines()
        doubled = tmp_path / "doubled.jsonl"
        doubled.write_text("\n".join(lines + lines) + "\n")
        aggregator = StreamingAggregator([doubled])
        assert aggregator.total_records == 2 * len(lines)
        assert aggregator.unique_missions == len(lines)
        assert aggregator.duplicates_dropped == len(lines)

    def test_last_write_wins_within_shard(self, tmp_path):
        record = {
            "key": "k1",
            "meta": {},
            "result": mission_result_to_dict(_fake_result(flight_time=10.0)),
        }
        newer = json.loads(json.dumps(record))
        newer["result"]["flight_time"] = 99.0
        shard = tmp_path / "shard.jsonl"
        shard.write_text(json.dumps(record) + "\n" + json.dumps(newer) + "\n")
        aggregator = StreamingAggregator([shard])
        (group,) = aggregator.groups.values()
        assert group.all_flight_times == [99.0]

    def test_superseded_record_loses_to_its_correction(self, tmp_path):
        """A record a shard proves outdated (followed by a correction for the
        same key) must lose the election even when an older backup shard
        still carries it as its last record -- regardless of which record's
        digest is larger, so the tie-break alone cannot resurrect it."""
        import hashlib

        def digest(record):
            return hashlib.sha1(
                json.dumps(record, sort_keys=True).encode("utf-8")
            ).hexdigest()

        stale = {
            "key": "k1",
            "meta": {},
            "result": mission_result_to_dict(_fake_result(flight_time=10.0)),
        }
        # One correction whose digest sorts below the stale record's and one
        # above: the supersession rule must win in both regimes.
        fresh_variants = {}
        for flight_time in range(90, 200):
            fresh = json.loads(json.dumps(stale))
            fresh["result"]["flight_time"] = float(flight_time)
            fresh_variants[digest(fresh) > digest(stale)] = fresh
            if len(fresh_variants) == 2:
                break
        assert len(fresh_variants) == 2
        for fresh in fresh_variants.values():
            current = tmp_path / "current.jsonl"
            backup = tmp_path / "backup.jsonl"
            current.write_text(json.dumps(stale) + "\n" + json.dumps(fresh) + "\n")
            backup.write_text(json.dumps(stale) + "\n")
            for shards in ([current, backup], [backup, current]):
                aggregator = StreamingAggregator(shards)
                (group,) = aggregator.groups.values()
                assert group.all_flight_times == [fresh["result"]["flight_time"]]
                assert aggregator.unique_missions == 1

    def test_cross_shard_conflict_resolves_order_invariantly(self, tmp_path):
        base = {
            "key": "k1",
            "meta": {},
            "result": mission_result_to_dict(_fake_result(flight_time=10.0)),
        }
        other = json.loads(json.dumps(base))
        other["result"]["flight_time"] = 42.0
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text(json.dumps(base) + "\n")
        b.write_text(json.dumps(other) + "\n")
        first = StreamingAggregator([a, b])
        second = StreamingAggregator([b, a])
        (group1,) = first.groups.values()
        (group2,) = second.groups.values()
        assert group1.all_flight_times == group2.all_flight_times
        assert first.unique_missions == second.unique_missions == 1

    def test_torn_tail_skipped(self, tmp_path, campaign_store):
        torn = tmp_path / "torn.jsonl"
        torn.write_text(campaign_store.read_text() + '{"key": "torn-li')
        intact = len(campaign_store.read_text().splitlines())
        aggregator = StreamingAggregator([torn])
        assert aggregator.total_records == intact


class TestReportDeterminism:
    def test_shard_order_yields_byte_identical_json(self, tmp_path, campaign_store):
        lines = campaign_store.read_text().splitlines()
        cut = len(lines) * 2 // 3
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        # Overlapping shards, as produced by two resumed campaign passes.
        a.write_text("\n".join(lines[:cut]) + "\n")
        b.write_text("\n".join(lines[cut // 2 :]) + "\n")
        out_ab = tmp_path / "ab.json"
        out_ba = tmp_path / "ba.json"
        write_report(build_report([a, b]), out_ab)
        write_report(build_report([b, a]), out_ba)
        assert out_ab.read_bytes() == out_ba.read_bytes()
        # And the merged shards reproduce the unsharded campaign's groups.
        whole = build_report([campaign_store])
        merged = json.loads(out_ab.read_text())
        assert merged["groups"] == whole["groups"]
        assert merged["detection_accuracy"] == whole["detection_accuracy"]
        assert merged["recovery"] == whole["recovery"]

    def test_same_store_twice_is_stable(self, campaign_store):
        first = build_report([campaign_store])
        second = build_report([campaign_store])
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


class TestReportContent:
    def test_report_validates_and_renders(self, campaign_store):
        report = build_report([campaign_store], title="smoke")
        validate_report(report)
        assert report["schema"] == REPORT_SCHEMA
        settings = {group["setting"] for group in report["groups"]}
        assert {"golden", "injection", "dr_gaussian", "dr_autoencoder"} <= settings
        text = render_report(report)
        for banner in (
            "Table I",
            "Table II",
            "Fig. 6",
            "Fig. 7",
            "Detection accuracy",
            "Recovery summary",
        ):
            assert banner in text
        # The recovery summary pairs golden/injection/D&R cells.
        assert {row["setting"] for row in report["recovery"]} == {
            "dr_gaussian",
            "dr_autoencoder",
        }

    def test_confidence_intervals_bracket_value(self, campaign_store):
        report = build_report([campaign_store])
        for group in report["groups"]:
            ci = group["confidence"]["mean_flight_time"]
            if ci["lower"] is None:
                continue
            assert ci["lower"] <= ci["value"] <= ci["upper"]
            assert ci["samples"] == group["qof"]["num_success"]

    def test_strict_json_output(self, tmp_path, campaign_store):
        out = tmp_path / "report.json"
        write_report(build_report([campaign_store]), out)
        text = out.read_text()
        assert "NaN" not in text and "Infinity" not in text
        json.loads(text)


class TestReportValidator:
    def _valid(self, campaign_store):
        return build_report([campaign_store])

    def test_rejects_wrong_schema(self, campaign_store):
        report = self._valid(campaign_store)
        report["schema"] = "repro-report-v0"
        with pytest.raises(ValueError, match="schema"):
            validate_report(report)

    def test_rejects_inconsistent_record_accounting(self, campaign_store):
        report = self._valid(campaign_store)
        report["records"]["total"] += 1
        with pytest.raises(ValueError, match="records.total"):
            validate_report(report)

    def test_rejects_nan_statistics(self, campaign_store):
        report = self._valid(campaign_store)
        report["groups"][0]["qof"]["mean_flight_time"] = float("nan")
        with pytest.raises(ValueError, match="finite"):
            validate_report(report)

    def test_rejects_unsorted_shards(self, campaign_store):
        report = self._valid(campaign_store)
        report["shards"] = ["b.jsonl", "a.jsonl"]
        with pytest.raises(ValueError, match="sorted"):
            validate_report(report)

    def test_rejects_out_of_range_success_rate(self, campaign_store):
        report = self._valid(campaign_store)
        report["groups"][0]["qof"]["success_rate"] = 1.5
        with pytest.raises(ValueError, match="success_rate"):
            validate_report(report)

    # Regressions for fields the validator historically never looked at
    # (found by the RL011 schema-drift checker): each emitted section must
    # now be rejected when it goes missing or malformed.

    def test_rejects_missing_bootstrap_settings(self, campaign_store):
        report = self._valid(campaign_store)
        report.pop("bootstrap")
        with pytest.raises(ValueError, match="bootstrap"):
            validate_report(report)

    def test_rejects_out_of_range_bootstrap_confidence(self, campaign_store):
        report = self._valid(campaign_store)
        report["bootstrap"]["confidence"] = 1.0
        with pytest.raises(ValueError, match="bootstrap.confidence"):
            validate_report(report)

    def test_rejects_missing_num_injected(self, campaign_store):
        report = self._valid(campaign_store)
        report["groups"][0]["qof"].pop("num_injected")
        with pytest.raises(ValueError, match="num_injected"):
            validate_report(report)

    def test_rejects_non_boolean_fallback_marker(self, campaign_store):
        report = self._valid(campaign_store)
        report["groups"][0]["qof"]["fell_back_to_failures"] = "no"
        with pytest.raises(ValueError, match="fell_back_to_failures"):
            validate_report(report)

    def test_rejects_missing_trajectory_section(self, campaign_store):
        report = self._valid(campaign_store)
        report["groups"][0].pop("trajectory")
        with pytest.raises(ValueError, match="trajectory"):
            validate_report(report)

    def test_rejects_negative_trajectory_counter(self, campaign_store):
        report = self._valid(campaign_store)
        report["groups"][0]["trajectory"]["replans_total"] = -1
        with pytest.raises(ValueError, match="replans_total"):
            validate_report(report)

    def test_rejects_missing_accuracy_sample_counter(self, campaign_store):
        report = self._valid(campaign_store)
        if not report["detection_accuracy"]:
            pytest.skip("fixture store produced no detection rows")
        report["detection_accuracy"][0].pop("golden_checked_samples")
        with pytest.raises(ValueError, match="golden_checked_samples"):
            validate_report(report)


# ---------------------------------------------------------------- bootstrap
class TestBootstrapCI:
    def test_seeded_and_deterministic(self):
        values = list(np.random.default_rng(5).normal(12.0, 3.0, size=40))
        first = bootstrap_ci(values, np.mean, seed=7)
        second = bootstrap_ci(values, np.mean, seed=7)
        assert (first.lower, first.upper) == (second.lower, second.upper)
        different = bootstrap_ci(values, np.mean, seed=8)
        assert (first.lower, first.upper) != (different.lower, different.upper)

    def test_brackets_the_statistic(self):
        rng = np.random.default_rng(0)
        values = rng.normal(50.0, 5.0, size=200)
        ci = bootstrap_ci(values, np.mean, confidence=0.95, seed=1)
        assert ci.lower <= ci.value <= ci.upper
        assert ci.lower == pytest.approx(50.0, abs=2.0)
        assert ci.samples == 200

    def test_degenerate_samples_yield_nan(self):
        empty = bootstrap_ci([], np.mean)
        assert empty.samples == 0
        assert math.isnan(empty.value) and math.isnan(empty.lower)
        single = bootstrap_ci([3.0], np.mean)
        assert single.value == 3.0
        assert math.isnan(single.lower) and math.isnan(single.upper)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], np.mean, confidence=1.0)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], np.mean, n_resamples=0)

    def test_qof_intervals_order_invariant(self):
        results = [
            _fake_result(flight_time=t, success=s)
            for t, s in [(10.0, True), (12.0, True), (14.0, True), (20.0, False)]
        ]
        forward = qof_confidence_intervals(results, seed=3)
        backward = qof_confidence_intervals(list(reversed(results)), seed=3)
        for name in forward:
            assert forward[name] == backward[name]
        assert forward["success_rate"].value == pytest.approx(0.75)


# --------------------------------------------------------------- CLI surface
class TestReportCli:
    def test_cli_report_writes_and_validates(self, tmp_path, campaign_store, capsys):
        out = tmp_path / "report.json"
        assert main(
            ["report", "--results", str(campaign_store), "--out", str(out)]
        ) == 0
        stdout = capsys.readouterr().out
        assert "Table I" in stdout and "Detection accuracy" in stdout
        assert out.exists()
        assert main(["report", "--validate", str(out)]) == 0
        assert "valid repro-report-v1" in capsys.readouterr().out

    def test_cli_report_quiet_only_writes(self, tmp_path, campaign_store, capsys):
        out = tmp_path / "report.json"
        assert main(
            ["report", "--results", str(campaign_store), "--out", str(out), "--quiet"]
        ) == 0
        stdout = capsys.readouterr().out
        assert "Table I" not in stdout
        assert str(out) in stdout

    def test_cli_report_missing_shard_fails(self, tmp_path, capsys):
        assert main(["report", "--results", str(tmp_path / "none.jsonl")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_cli_report_empty_store_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["report", "--results", str(empty)]) == 1
        assert "no intact records" in capsys.readouterr().out

    def test_cli_report_needs_results_or_validate(self, capsys):
        assert main(["report"]) == 2
        assert "needs --results" in capsys.readouterr().err

    def test_cli_report_shard_order_invariant(self, tmp_path, campaign_store):
        lines = campaign_store.read_text().splitlines()
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
        b.write_text("\n".join(lines[len(lines) // 2 :]) + "\n")
        out1 = tmp_path / "r1.json"
        out2 = tmp_path / "r2.json"
        assert main(
            ["report", "--results", str(a), str(b), "--out", str(out1), "--quiet"]
        ) == 0
        assert main(
            ["report", "--results", str(b), str(a), "--out", str(out2), "--quiet"]
        ) == 0
        assert out1.read_bytes() == out2.read_bytes()


# ------------------------------------------------------ dataclass behaviour
def test_fake_result_replace_keeps_new_fields():
    """The new MissionResult fields behave like every other dataclass field."""
    result = _fake_result(injection_time=3.0, first_alarm_time=3.5)
    clone = replace(result, flight_time=1.0)
    assert clone.injection_time == 3.0
    assert clone.first_alarm_time == 3.5
