"""Tests for topic pub/sub (with taps) and services."""

import pytest

from repro.rosmw.exceptions import ServiceNotFoundError, TopicTypeError
from repro.rosmw.message import FlightCommandMsg, Message, OdometryMsg
from repro.rosmw.service import ServiceBus
from repro.rosmw.topic import TopicBus


class TestTopicBus:
    def test_subscriber_receives_published_message(self):
        bus = TopicBus()
        received = []
        bus.subscribe("/cmd", FlightCommandMsg, received.append)
        bus.publish("/cmd", FlightCommandMsg(vx=1.0))
        assert len(received) == 1
        assert received[0].vx == 1.0

    def test_publish_on_unknown_topic_is_silent(self):
        bus = TopicBus()
        delivered = bus.publish("/nobody", FlightCommandMsg())
        assert delivered is not None

    def test_multiple_subscribers_all_receive(self):
        bus = TopicBus()
        a, b = [], []
        bus.subscribe("/cmd", FlightCommandMsg, a.append)
        bus.subscribe("/cmd", FlightCommandMsg, b.append)
        bus.publish("/cmd", FlightCommandMsg())
        assert len(a) == 1 and len(b) == 1

    def test_type_mismatch_on_publish_rejected(self):
        bus = TopicBus()
        bus.advertise("/cmd", FlightCommandMsg)
        with pytest.raises(TopicTypeError):
            bus.publish("/cmd", OdometryMsg())

    def test_conflicting_advertise_rejected(self):
        bus = TopicBus()
        bus.advertise("/cmd", FlightCommandMsg)
        with pytest.raises(TopicTypeError):
            bus.advertise("/cmd", OdometryMsg)

    def test_base_message_type_acts_as_wildcard(self):
        bus = TopicBus()
        bus.advertise("/cmd", FlightCommandMsg)
        received = []
        bus.subscribe("/cmd", Message, received.append)
        bus.publish("/cmd", FlightCommandMsg(vx=2.0))
        assert received[0].vx == 2.0

    def test_wildcard_topic_upgraded_by_concrete_type(self):
        bus = TopicBus()
        bus.subscribe("/cmd", Message, lambda m: None)
        bus.advertise("/cmd", FlightCommandMsg)
        with pytest.raises(TopicTypeError):
            bus.publish("/cmd", OdometryMsg())

    def test_unsubscribe_stops_delivery(self):
        bus = TopicBus()
        received = []
        bus.subscribe("/cmd", FlightCommandMsg, received.append)
        bus.unsubscribe("/cmd", received.append)
        bus.publish("/cmd", FlightCommandMsg())
        assert received == []

    def test_tap_can_rewrite_message(self):
        bus = TopicBus()
        received = []
        bus.subscribe("/cmd", FlightCommandMsg, received.append)

        def doubler(name, msg):
            msg.vx *= 2
            return msg

        bus.add_tap("/cmd", doubler)
        bus.publish("/cmd", FlightCommandMsg(vx=1.5))
        assert received[0].vx == pytest.approx(3.0)

    def test_tap_can_drop_message(self):
        bus = TopicBus()
        received = []
        bus.subscribe("/cmd", FlightCommandMsg, received.append)
        bus.add_tap("/cmd", lambda name, msg: None)
        delivered = bus.publish("/cmd", FlightCommandMsg())
        assert delivered is None
        assert received == []

    def test_dropped_message_not_counted(self):
        bus = TopicBus()
        bus.subscribe("/cmd", FlightCommandMsg, lambda m: None)
        bus.add_tap("/cmd", lambda name, msg: None)
        bus.publish("/cmd", FlightCommandMsg())
        assert bus.publish_count("/cmd") == 0

    def test_prepended_tap_runs_first(self):
        bus = TopicBus()
        order = []
        bus.subscribe("/cmd", FlightCommandMsg, lambda m: None)

        def tap_a(name, msg):
            order.append("a")
            return msg

        def tap_b(name, msg):
            order.append("b")
            return msg

        bus.add_tap("/cmd", tap_a)
        bus.add_tap("/cmd", tap_b, prepend=True)
        bus.publish("/cmd", FlightCommandMsg())
        assert order == ["b", "a"]

    def test_remove_tap(self):
        bus = TopicBus()
        bus.subscribe("/cmd", FlightCommandMsg, lambda m: None)
        tap = lambda name, msg: None
        bus.add_tap("/cmd", tap)
        bus.remove_tap("/cmd", tap)
        assert bus.publish("/cmd", FlightCommandMsg()) is not None

    def test_statistics_and_reset(self):
        bus = TopicBus()
        bus.subscribe("/cmd", FlightCommandMsg, lambda m: None)
        bus.publish("/cmd", FlightCommandMsg(vx=4.0))
        assert bus.publish_count("/cmd") == 1
        assert bus.last_message("/cmd").vx == 4.0
        assert bus.subscriber_count("/cmd") == 1
        bus.reset_statistics()
        assert bus.publish_count("/cmd") == 0
        assert bus.last_message("/cmd") is None

    def test_topics_listing(self):
        bus = TopicBus()
        bus.advertise("/b", FlightCommandMsg)
        bus.advertise("/a", OdometryMsg)
        assert bus.topics() == ["/a", "/b"]


class TestServiceBus:
    def test_call_round_trip(self):
        bus = ServiceBus()
        bus.advertise("/double", lambda x: x * 2)
        assert bus.call("/double", 21) == 42

    def test_missing_service_raises(self):
        bus = ServiceBus()
        with pytest.raises(ServiceNotFoundError):
            bus.call("/nope", None)

    def test_proxy_calls_and_exists(self):
        bus = ServiceBus()
        bus.advertise("/ping", lambda _: "pong")
        proxy = bus.proxy("/ping")
        assert proxy.exists()
        assert proxy.call(None) == "pong"

    def test_proxy_for_missing_service(self):
        bus = ServiceBus()
        proxy = bus.proxy("/nothing")
        assert not proxy.exists()

    def test_unadvertise_via_server_handle(self):
        bus = ServiceBus()
        server = bus.advertise("/ping", lambda _: "pong")
        server.shutdown()
        assert not bus.has_service("/ping")

    def test_call_counting_and_reset(self):
        bus = ServiceBus()
        bus.advertise("/ping", lambda _: "pong")
        bus.call("/ping", None)
        bus.call("/ping", None)
        assert bus.call_count("/ping") == 2
        bus.reset_statistics()
        assert bus.call_count("/ping") == 0

    def test_reregistering_replaces_handler(self):
        bus = ServiceBus()
        bus.advertise("/f", lambda x: 1)
        bus.advertise("/f", lambda x: 2)
        assert bus.call("/f", None) == 2

    def test_services_listing(self):
        bus = ServiceBus()
        bus.advertise("/b", lambda x: x)
        bus.advertise("/a", lambda x: x)
        assert bus.services() == ["/a", "/b"]
