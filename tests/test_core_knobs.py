"""The central env-knob registry (repro.core.knobs).

Covers the registry surface, per-kind parsing/validation (including the
legacy empty-string semantics each knob inherited from its pre-registry
parser), the temporary/snapshot helpers, and regression tests proving the
consolidated call sites still honour the knobs.
"""

import pytest

from repro.core import knobs


@pytest.fixture(autouse=True)
def _clean_knob_env(monkeypatch):
    """Every test starts with no engine knob set."""
    for name in knobs.registered_names():
        monkeypatch.delenv(name, raising=False)


# ------------------------------------------------------------------- registry
class TestRegistry:
    def test_expected_knobs_registered(self):
        names = knobs.registered_names()
        assert set(names) == {
            "REPRO_NO_CACHE",
            "REPRO_NO_CHECKPOINT",
            "REPRO_CHECKPOINT_VERIFY",
            "REPRO_SCALAR_KERNELS",
            "REPRO_BENCH_RESULTS_DIR",
            "REPRO_CHAOS",
            "REPRO_CHAOS_SEED",
            "REPRO_MAX_ATTEMPTS",
            "REPRO_TASK_TIMEOUT",
            "REPRO_QUARANTINE_STRIKES",
            "REPRO_POOL_RESPAWNS",
            "MAVFI_WORKERS",
            "MAVFI_OVERSUBSCRIBE",
            "MAVFI_RUNS",
        }
        assert all(name.startswith(knobs.KNOB_PREFIXES) for name in names)

    def test_unregistered_name_raises_everywhere(self):
        for accessor in (knobs.raw, knobs.flag, knobs.value, knobs.unset_env):
            with pytest.raises(KeyError, match="unregistered engine knob"):
                accessor("REPRO_NOT_A_KNOB")
        with pytest.raises(KeyError, match="declare it in repro.core.knobs"):
            # repro-lint: disable=RL006,RL010 deliberately exercises the unregistered-name rejection
            knobs.set_env("MAVFI_NOT_A_KNOB", "1")

    def test_describe_rows_covers_every_knob(self):
        rows = knobs.describe_rows()
        assert {row[0] for row in rows} == set(knobs.registered_names())
        for _name, kind, default, description in rows:
            assert kind in ("flag", "float", "int", "path", "str")
            assert default and description

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate knob registration"):
            knobs._register(knobs.KNOBS["MAVFI_RUNS"])


# ---------------------------------------------------------------------- flags
class TestFlags:
    @pytest.mark.parametrize("raw", ["", "0", "false", "no", "  No  ", "FALSE"])
    def test_falsy_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_NO_CACHE", raw)
        assert knobs.flag("REPRO_NO_CACHE") is False

    @pytest.mark.parametrize("raw", ["1", "true", "yes", "anything"])
    def test_truthy_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_NO_CACHE", raw)
        assert knobs.flag("REPRO_NO_CACHE") is True

    def test_unset_is_false(self):
        assert knobs.flag("REPRO_SCALAR_KERNELS") is False

    def test_flag_accessor_rejects_non_flag_knobs(self):
        with pytest.raises(ValueError, match="not a flag"):
            knobs.flag("MAVFI_RUNS")


# ------------------------------------------------------------------ MAVFI_RUNS
class TestRunsScale:
    def test_unset_is_none(self):
        assert knobs.value("MAVFI_RUNS") is None

    def test_valid_scale(self, monkeypatch):
        monkeypatch.setenv("MAVFI_RUNS", "2.5")
        assert knobs.value("MAVFI_RUNS") == 2.5

    def test_floor_applied(self, monkeypatch):
        monkeypatch.setenv("MAVFI_RUNS", "0.001")
        assert knobs.value("MAVFI_RUNS") == 0.01

    @pytest.mark.parametrize("junk", ["", "abc", "nan", "inf", "-1"])
    def test_junk_rejected(self, monkeypatch, junk):
        # Empty string is junk for MAVFI_RUNS (unlike MAVFI_WORKERS).
        monkeypatch.setenv("MAVFI_RUNS", junk)
        with pytest.raises(ValueError, match="MAVFI_RUNS"):
            knobs.value("MAVFI_RUNS")


# ---------------------------------------------------------------- MAVFI_WORKERS
class TestWorkerCount:
    def test_unset_and_empty_are_none(self, monkeypatch):
        assert knobs.value("MAVFI_WORKERS") is None
        monkeypatch.setenv("MAVFI_WORKERS", "   ")
        assert knobs.value("MAVFI_WORKERS") is None

    def test_valid_count(self, monkeypatch):
        monkeypatch.setenv("MAVFI_WORKERS", "4")
        assert knobs.value("MAVFI_WORKERS") == 4

    @pytest.mark.parametrize("junk", ["abc", "-2", "1.5"])
    def test_junk_rejected(self, monkeypatch, junk):
        monkeypatch.setenv("MAVFI_WORKERS", junk)
        with pytest.raises(ValueError, match="MAVFI_WORKERS"):
            knobs.value("MAVFI_WORKERS")


# -------------------------------------------------------------------- helpers
class TestHelpers:
    def test_set_unset_roundtrip(self):
        knobs.set_env("REPRO_NO_CACHE", "1")
        assert knobs.raw("REPRO_NO_CACHE") == "1"
        knobs.unset_env("REPRO_NO_CACHE")
        assert knobs.raw("REPRO_NO_CACHE") is None

    def test_raw_or(self, monkeypatch):
        assert knobs.raw_or("REPRO_BENCH_RESULTS_DIR", "fallback") == "fallback"
        monkeypatch.setenv("REPRO_BENCH_RESULTS_DIR", "/tmp/results")
        assert knobs.raw_or("REPRO_BENCH_RESULTS_DIR", "fallback") == "/tmp/results"

    def test_bench_results_dir_honours_knob(self, monkeypatch, tmp_path):
        # Regression (RL010 dead-knob finding): the registered knob must
        # actually be read through the engine, not just by benchmark conftest.
        from repro.bench.harness import results_dir

        default = tmp_path / "default"
        assert results_dir(default) == default
        monkeypatch.setenv("REPRO_BENCH_RESULTS_DIR", str(tmp_path / "override"))
        assert results_dir(default) == tmp_path / "override"

    def test_setdefault_env(self, monkeypatch):
        assert knobs.setdefault_env("MAVFI_OVERSUBSCRIBE", "1") == "1"
        assert knobs.raw("MAVFI_OVERSUBSCRIBE") == "1"
        monkeypatch.setenv("MAVFI_OVERSUBSCRIBE", "0")
        assert knobs.setdefault_env("MAVFI_OVERSUBSCRIBE", "1") == "0"

    def test_temporary_pins_and_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "original")
        with knobs.temporary({"REPRO_NO_CACHE": "1", "MAVFI_RUNS": "2.0"}):
            assert knobs.raw("REPRO_NO_CACHE") == "1"
            assert knobs.value("MAVFI_RUNS") == 2.0
        assert knobs.raw("REPRO_NO_CACHE") == "original"
        assert knobs.raw("MAVFI_RUNS") is None

    def test_temporary_none_pins_unset(self, monkeypatch):
        monkeypatch.setenv("MAVFI_WORKERS", "8")
        with knobs.temporary({"MAVFI_WORKERS": None}):
            assert knobs.raw("MAVFI_WORKERS") is None
        assert knobs.raw("MAVFI_WORKERS") == "8"

    def test_temporary_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with knobs.temporary({"REPRO_NO_CHECKPOINT": "1"}):
                raise RuntimeError("boom")
        assert knobs.raw("REPRO_NO_CHECKPOINT") is None

    def test_snapshot(self, monkeypatch):
        monkeypatch.setenv("MAVFI_RUNS", "3.0")
        shot = knobs.snapshot(("MAVFI_RUNS", "MAVFI_WORKERS"))
        assert shot == {"MAVFI_RUNS": "3.0", "MAVFI_WORKERS": ""}
        full = knobs.snapshot()
        assert set(full) == set(knobs.registered_names())


# ------------------------------------------------- consolidation regressions
class TestConsolidatedCallSites:
    """The pre-registry accessors now honour the registry's parsing."""

    def test_builder_env_flag(self, monkeypatch):
        from repro.pipeline.builder import construction_caches_enabled, env_flag

        assert env_flag("REPRO_NO_CACHE") is False
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert env_flag("REPRO_NO_CACHE") is True
        assert construction_caches_enabled() is False

    def test_occupancy_scalar_kernels(self, monkeypatch):
        from repro.perception.occupancy import use_scalar_kernels

        assert use_scalar_kernels() is False
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "yes")
        assert use_scalar_kernels() is True
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "no")
        assert use_scalar_kernels() is False

    def test_executor_worker_count(self, monkeypatch):
        from repro.core.executor import env_worker_count

        monkeypatch.delenv("MAVFI_WORKERS", raising=False)
        assert env_worker_count() == 1
        monkeypatch.setenv("MAVFI_WORKERS", "3")
        assert env_worker_count() == 3
        monkeypatch.setenv("MAVFI_WORKERS", "junk")
        with pytest.raises(ValueError, match="MAVFI_WORKERS"):
            env_worker_count()

    def test_campaign_runs_scale(self, monkeypatch):
        from repro.core.campaign import runs_scale

        monkeypatch.setenv("MAVFI_RUNS", "2.0")
        assert runs_scale() == 2.0
        monkeypatch.setenv("MAVFI_RUNS", "bogus")
        with pytest.raises(ValueError, match="MAVFI_RUNS must be a number"):
            runs_scale()
