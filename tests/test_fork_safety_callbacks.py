"""Fork-safety regressions for the callable-object fault callbacks.

Each of these classes replaced a closure that repro lint RL003 now bans:
closures pin the original node through their cells (a deep-copied pipeline
kept corrupting the *original* node's messages) and cannot be pickled into
cursor snapshots at all.  A callable object rebinds through the deepcopy
memo and pickles, which is exactly what these tests pin down.
"""

import copy
import pickle

import numpy as np
import pytest

from repro.core.injector import FaultInjectorNode, FaultPlan, _StateFieldTap
from repro.detection.training import FeatureCollectorNode, _TopicRecorder
from repro.perception.point_cloud import PointCloudNode, _PointElementCorruption
from repro.pipeline.kernel import KernelNode, _MessageFieldCorruption
from repro.rosmw.message import PointCloudMsg


class _Probe(KernelNode):
    stage = "perception"


def test_armed_kernel_fault_is_picklable():
    node = _Probe("probe")
    node.corrupt_internal(np.random.default_rng(0), bit=7)
    assert node.has_pending_fault
    clone = pickle.loads(pickle.dumps(node))
    assert clone.has_pending_fault
    fault = clone._pending_fault
    assert isinstance(fault.corrupt, _MessageFieldCorruption)
    assert fault.corrupt.bit == 7


def test_deepcopy_rebinds_corruption_to_the_copy():
    node = _Probe("probe")
    node.corrupt_internal(np.random.default_rng(0), bit=3)
    clone = copy.deepcopy(node)
    # The copied fault must point at the copied node, not the original:
    # before the callable-object refactor the closure kept corrupting the
    # original node's output messages after a golden-prefix fork.
    assert clone._pending_fault.corrupt.node is clone
    assert node._pending_fault.corrupt.node is node
    assert clone._pending_fault.corrupt.node is not node


def test_message_field_corruption_applies_and_describes():
    node = _Probe("probe")
    rng = np.random.default_rng(5)
    corruption = _MessageFieldCorruption(node, bit=11, label="output")
    msg = PointCloudMsg(points=np.ones((4, 3)))
    detail = corruption(msg, rng)
    assert detail is not None and detail.startswith("probe: corrupted output field")


def test_point_element_corruption_pickles_and_mutates():
    armed = PointCloudNode()
    armed.corrupt_internal(np.random.default_rng(2), bit=9)
    clone = pickle.loads(pickle.dumps(armed))
    fault = clone._pending_fault
    assert isinstance(fault.corrupt, _PointElementCorruption)
    msg = PointCloudMsg(points=np.ones((8, 3)))
    before = msg.points.copy()
    fault.corrupt(msg, np.random.default_rng(2))
    assert not np.array_equal(before, msg.points)


def test_state_field_tap_rebinds_with_injector():
    injector = FaultInjectorNode(FaultPlan(target_type="state", target="point_cloud"), {})
    tap = _StateFieldTap(injector, "point_cloud", bit=4)
    injector._state_tap = tap

    copied = copy.deepcopy(injector)
    assert copied._state_tap is not tap
    assert copied._state_tap.injector is copied

    revived = pickle.loads(pickle.dumps(injector))
    assert revived._state_tap.injector is revived
    assert revived._state_tap.bit == 4


def test_topic_recorder_rebinds_with_collector():
    collector = FeatureCollectorNode()
    recorder = _TopicRecorder(collector, "some/topic")

    copied_collector, copied_recorder = copy.deepcopy((collector, recorder))
    assert copied_recorder.node is copied_collector

    revived = pickle.loads(pickle.dumps(recorder))
    assert revived.topic == "some/topic"
    assert isinstance(revived.node, FeatureCollectorNode)


def test_control_node_command_fault_survives_fork():
    from repro.control.path_tracking import ControlNode

    node = ControlNode()
    # Drive corrupt_internal into the armed-command branch (choice >= 2/3
    # with no trajectory cached falls through to arming the next command).
    rng = np.random.default_rng(1)
    description = node.corrupt_internal(rng, bit=13)
    if not node.has_pending_fault:
        pytest.skip(f"rng drew a persistent-state branch: {description}")
    clone = copy.deepcopy(node)
    assert clone._pending_fault.corrupt.node is clone
    pickle.loads(pickle.dumps(node))
