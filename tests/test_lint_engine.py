"""Engine-level tests: pragmas, baseline, output formats, exit codes, CLI.

Ends with the meta-test: the shipped tree must lint clean (no finding that
is not either fixed or excused by a reasoned pragma / the committed
baseline) -- the same gate CI enforces.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint.baseline import (
    BASELINE_SCHEMA,
    load_baseline,
    save_baseline,
)
from repro.lint.engine import (
    JSON_SCHEMA,
    UsageError,
    collect_files,
    find_repo_root,
    format_result,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

VIOLATION = "import random\nx = random.random()\n"


def make_repo(tmp_path: Path, source: str = VIOLATION) -> Path:
    """A throwaway repo root holding one engine file with one violation."""
    (tmp_path / "pyproject.toml").touch()
    path = tmp_path / "src" / "repro" / "pipeline" / "fixture.py"
    path.parent.mkdir(parents=True)
    path.write_text(source)
    return tmp_path


# -------------------------------------------------------------------- pragmas
class TestPragmas:
    def test_trailing_pragma_suppresses(self, tmp_path):
        root = make_repo(
            tmp_path,
            "import random\n"
            "x = random.random()  # repro-lint: disable=RL001 fixture needs ambient entropy\n",
        )
        result = run_lint([Path("src")], root=root, use_baseline=False)
        assert result.findings == []

    def test_preceding_line_pragma_suppresses(self, tmp_path):
        root = make_repo(
            tmp_path,
            "import random\n"
            "# repro-lint: disable=RL001 fixture needs ambient entropy\n"
            "x = random.random()\n",
        )
        result = run_lint([Path("src")], root=root, use_baseline=False)
        assert result.findings == []

    def test_file_level_pragma_suppresses(self, tmp_path):
        root = make_repo(
            tmp_path,
            "# repro-lint: disable-file=RL001 fixture module is all entropy\n"
            "import random\n"
            "x = random.random()\n"
            "y = random.random()\n",
        )
        result = run_lint([Path("src")], root=root, use_baseline=False)
        assert result.findings == []

    def test_pragma_without_reason_reports_rl000(self, tmp_path):
        root = make_repo(
            tmp_path,
            "import random\n"
            "x = random.random()  # repro-lint: disable=RL001\n",
        )
        result = run_lint([Path("src")], root=root, use_baseline=False)
        assert [f.code for f in result.findings] == ["RL000"]
        assert "reason" in result.findings[0].message

    def test_pragma_only_suppresses_named_code(self, tmp_path):
        root = make_repo(
            tmp_path,
            "import random, time\n"
            "x = random.random() or time.time()  # repro-lint: disable=RL001 entropy ok here\n",
        )
        result = run_lint([Path("src")], root=root, use_baseline=False)
        assert [f.code for f in result.findings] == ["RL002"]

    def test_malformed_pragma_reports_rl000(self, tmp_path):
        root = make_repo(tmp_path, "# repro-lint: disable RL001 oops\npass\n")
        result = run_lint([Path("src")], root=root, use_baseline=False)
        assert [f.code for f in result.findings] == ["RL000"]

    def test_pragma_in_string_literal_ignored(self, tmp_path):
        root = make_repo(
            tmp_path,
            'TEXT = "# repro-lint: disable=RL001 not a real pragma"\n'
            "import random\n"
            "x = random.random()\n",
        )
        result = run_lint([Path("src")], root=root, use_baseline=False)
        assert [f.code for f in result.findings] == ["RL001"]


# ------------------------------------------------------------------- baseline
class TestBaseline:
    def test_round_trip_suppresses_known_findings(self, tmp_path):
        root = make_repo(tmp_path)
        baseline = root / "lint-baseline.json"
        first = run_lint([Path("src")], root=root, use_baseline=False)
        assert len(first.findings) == 1
        save_baseline(baseline, first.findings)

        second = run_lint([Path("src")], root=root, baseline_path=baseline)
        assert second.new_findings == []
        assert [f.baselined for f in second.findings] == [True]
        assert second.exit_code == 0

    def test_baseline_survives_line_drift(self, tmp_path):
        root = make_repo(tmp_path)
        baseline = root / "lint-baseline.json"
        save_baseline(
            baseline, run_lint([Path("src")], root=root, use_baseline=False).findings
        )
        # Prepend unrelated lines: the finding moves but its content doesn't.
        path = root / "src" / "repro" / "pipeline" / "fixture.py"
        path.write_text("import os\nUNRELATED = 1\n\n" + path.read_text())
        drifted = run_lint([Path("src")], root=root, baseline_path=baseline)
        assert drifted.new_findings == []

    def test_new_finding_not_covered_by_baseline(self, tmp_path):
        root = make_repo(tmp_path)
        baseline = root / "lint-baseline.json"
        save_baseline(
            baseline, run_lint([Path("src")], root=root, use_baseline=False).findings
        )
        path = root / "src" / "repro" / "pipeline" / "fixture.py"
        path.write_text(path.read_text() + "import time\nt = time.time()\n")
        result = run_lint([Path("src")], root=root, baseline_path=baseline)
        assert [f.code for f in result.new_findings] == ["RL002"]
        assert result.exit_code == 1

    def test_schema_and_format(self, tmp_path):
        root = make_repo(tmp_path)
        baseline = root / "baseline.json"
        save_baseline(
            baseline, run_lint([Path("src")], root=root, use_baseline=False).findings
        )
        payload = json.loads(baseline.read_text())
        assert payload["schema"] == BASELINE_SCHEMA
        assert {"code", "path", "fingerprint"} == set(payload["findings"][0])
        assert load_baseline(baseline) == {payload["findings"][0]["fingerprint"]}

    def test_corrupt_baseline_is_usage_error(self, tmp_path):
        root = make_repo(tmp_path)
        baseline = root / "lint-baseline.json"
        baseline.write_text("{\"schema\": \"something-else\"}")
        with pytest.raises(UsageError):
            run_lint([Path("src")], root=root, baseline_path=baseline)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()


# ------------------------------------------------------------ output formats
class TestOutput:
    def test_json_schema(self, tmp_path):
        root = make_repo(tmp_path)
        result = run_lint([Path("src")], root=root, use_baseline=False)
        payload = json.loads(format_result(result, fmt="json"))
        assert payload["schema"] == JSON_SCHEMA
        assert payload["files_checked"] == 1
        assert payload["counts"] == {
            "total": 1,
            "new": 1,
            "baselined": 0,
            "stale_baseline": 0,
        }
        assert payload["stale_baseline"] == []
        (finding,) = payload["findings"]
        assert finding["code"] == "RL001"
        assert finding["path"] == "src/repro/pipeline/fixture.py"
        assert finding["line"] == 2
        assert isinstance(finding["fingerprint"], str) and len(finding["fingerprint"]) == 40
        assert finding["baselined"] is False

    def test_text_format(self, tmp_path):
        root = make_repo(tmp_path)
        result = run_lint([Path("src")], root=root, use_baseline=False)
        text = format_result(result)
        assert "src/repro/pipeline/fixture.py:2:" in text
        assert "RL001" in text
        assert "1 finding" in text

    def test_identical_lines_get_distinct_fingerprints(self, tmp_path):
        root = make_repo(
            tmp_path,
            "import random\nx = random.random()\ny = random.random()\n",
        )
        # Same code, same content after normalization only if lines identical;
        # make them identical:
        path = root / "src" / "repro" / "pipeline" / "fixture.py"
        path.write_text("import random\nx = random.random()\nx = random.random()\n")
        result = run_lint([Path("src")], root=root, use_baseline=False)
        prints = [f.fingerprint for f in result.findings]
        assert len(prints) == 2 and len(set(prints)) == 2


# ------------------------------------------------------------------ engine IO
class TestEngine:
    def test_unknown_path_is_usage_error(self, tmp_path):
        (tmp_path / "pyproject.toml").touch()
        with pytest.raises(UsageError):
            run_lint([Path("nope")], root=tmp_path)

    def test_unknown_code_is_usage_error(self, tmp_path):
        root = make_repo(tmp_path)
        with pytest.raises(UsageError):
            run_lint([Path("src")], root=root, select=["RL999"])

    def test_collect_skips_pycache(self, tmp_path):
        root = make_repo(tmp_path)
        cache = root / "src" / "repro" / "__pycache__"
        cache.mkdir(parents=True)
        (cache / "junk.py").write_text("import random\nrandom.random()\n")
        files = collect_files([Path("src")], root)
        assert all("__pycache__" not in str(f) for f in files)

    def test_find_repo_root(self):
        assert find_repo_root(REPO_ROOT / "src" / "repro") == REPO_ROOT

    def test_syntax_error_reported_not_crash(self, tmp_path):
        root = make_repo(tmp_path, "def broken(:\n")
        result = run_lint([Path("src")], root=root, use_baseline=False)
        assert [f.code for f in result.findings] == ["RL000"]
        assert "does not parse" in result.findings[0].message


# ------------------------------------------------------------------ CLI layer
class TestCli:
    def run_cli(self, *argv):
        return repro_main(["lint", *argv])

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys, monkeypatch):
        root = make_repo(tmp_path, "VALUE = 1\n")
        monkeypatch.chdir(root)
        assert self.run_cli() == 0
        assert "0 findings" in capsys.readouterr().out

    def test_exit_one_on_violation(self, tmp_path, capsys, monkeypatch):
        root = make_repo(tmp_path)
        monkeypatch.chdir(root)
        assert self.run_cli() == 1
        assert "RL001" in capsys.readouterr().out

    def test_exit_two_on_bad_select(self, tmp_path, capsys, monkeypatch):
        root = make_repo(tmp_path)
        monkeypatch.chdir(root)
        assert self.run_cli("--select", "RL999") == 2

    def test_ignore_silences_checker(self, tmp_path, capsys, monkeypatch):
        root = make_repo(tmp_path)
        monkeypatch.chdir(root)
        assert self.run_cli("--ignore", "RL001") == 0

    def test_write_baseline_then_clean(self, tmp_path, capsys, monkeypatch):
        root = make_repo(tmp_path)
        monkeypatch.chdir(root)
        assert self.run_cli("--write-baseline") == 0
        assert (root / "lint-baseline.json").exists()
        assert self.run_cli() == 0

    def test_json_format(self, tmp_path, capsys, monkeypatch):
        root = make_repo(tmp_path)
        monkeypatch.chdir(root)
        assert self.run_cli("--format", "json", "--no-baseline") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == JSON_SCHEMA

    def test_list_checkers(self, capsys):
        assert self.run_cli("--list-checkers") == 0
        out = capsys.readouterr().out
        for code in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
            assert code in out


# ------------------------------------------------------------------ meta-test
class TestShippedTreeIsClean:
    """The gate CI enforces: the live tree has zero non-baselined findings."""

    def test_live_tree_lints_clean(self):
        result = run_lint(
            [Path("src/repro"), Path("tests"), Path("benchmarks")],
            root=REPO_ROOT,
        )
        messages = [f.format_text() for f in result.new_findings]
        assert messages == [], "\n".join(messages)

    def test_module_entry_point(self):
        # `python -m repro lint` is the exact command CI runs.
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint"],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 findings" in proc.stdout
