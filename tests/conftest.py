"""Shared fixtures for the MAVFI reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import knobs
from repro.detection.autoencoder import AadDetector, AutoencoderConfig
from repro.detection.gaussian import GadConfig, GaussianDetector
from repro.pipeline.builder import PipelineConfig, build_pipeline
from repro.pipeline.states import MONITORED_FEATURES
from repro.rosmw.graph import NodeGraph
from repro.sim.environments import make_environment
from repro.sim.world import Cuboid, World


def pytest_configure(config):
    # The parallel executor clamps its worker count to the CPU count (process
    # oversubscription only slows campaigns down), which on a single-core CI
    # box would silently turn every pool test into a serial-fallback test.
    # Lift the clamp for the suite so the tests exercise real worker pools;
    # individual tests opt back in via ParallelExecutor(oversubscribe=False).
    knobs.setdefault_env("MAVFI_OVERSUBSCRIBE", "1")


@pytest.fixture
def graph() -> NodeGraph:
    """A fresh, empty node graph."""
    return NodeGraph()


@pytest.fixture
def simple_world() -> World:
    """A small world with one box obstacle in front of the origin."""
    world = World(name="test")
    world.add_obstacle(Cuboid.from_center((10.0, 0.0, 3.0), (4.0, 4.0, 6.0), name="box"))
    return world


@pytest.fixture
def farm_world() -> World:
    """The (effectively obstacle-free) farm evaluation environment."""
    return make_environment("farm", seed=0)


@pytest.fixture
def fast_pipeline_config() -> PipelineConfig:
    """A pipeline configuration that runs a mission in well under a second."""
    return PipelineConfig(environment="farm", seed=0, mission_time_limit=60.0)


@pytest.fixture
def built_pipeline(fast_pipeline_config):
    """A built (un-started) pipeline in the farm environment."""
    return build_pipeline(fast_pipeline_config)


def _synthetic_training_deltas(rng: np.random.Generator, n: int = 400):
    """Synthetic error-free delta traces for detector training in unit tests."""
    deltas = {}
    for i, feature in enumerate(MONITORED_FEATURES):
        scale = 3.0 + i
        deltas[feature] = list(np.round(rng.normal(0.0, scale, size=n)))
    return deltas


@pytest.fixture(scope="session")
def synthetic_training_deltas():
    """Session-wide synthetic training deltas (cheap, deterministic)."""
    return _synthetic_training_deltas(np.random.default_rng(7))


@pytest.fixture(scope="session")
def trained_gad(synthetic_training_deltas) -> GaussianDetector:
    """A Gaussian detector fitted on synthetic normal deltas."""
    detector = GaussianDetector(GadConfig(n_sigma=6.0, min_samples=5))
    detector.fit(synthetic_training_deltas)
    return detector


@pytest.fixture(scope="session")
def trained_aad(synthetic_training_deltas) -> AadDetector:
    """An autoencoder detector fitted on synthetic normal deltas."""
    config = AutoencoderConfig(
        layer_sizes=(len(MONITORED_FEATURES), 6, 3, len(MONITORED_FEATURES)),
        epochs=15,
        seed=3,
    )
    detector = AadDetector(config=config)
    detector.fit(synthetic_training_deltas)
    return detector
