"""Tests for the campaign execution engine (specs, executors, resume)."""

from __future__ import annotations

import os

import pytest

from repro.core.campaign import Campaign, CampaignConfig, RunSetting
from repro.core.executor import (
    DETECTOR_GAUSSIAN,
    ParallelExecutor,
    RunSpec,
    SerialExecutor,
    env_worker_count,
    estimate_group_cost,
    execute_spec,
    execute_specs,
    get_executor,
    oversubscription_allowed,
    prefix_groups,
    resolve_worker_count,
)
from repro.core.injector import FaultPlan
from repro.core.results import (
    JsonlResultStore,
    mission_result_to_dict,
    mission_results_equal,
)


def _fast_campaign(**overrides) -> Campaign:
    config = CampaignConfig(
        environment="farm",
        num_golden=overrides.pop("num_golden", 3),
        num_injections_per_stage=overrides.pop("num_injections_per_stage", 1),
        mission_time_limit=60.0,
        **overrides,
    )
    return Campaign(config)


def _small_specs(campaign: Campaign):
    return campaign.golden_specs() + campaign.stage_injection_specs(
        RunSetting.INJECTION
    )


class TestRunSpec:
    def test_key_is_deterministic_and_content_addressed(self):
        campaign = _fast_campaign()
        spec_a = campaign.golden_specs()[0]
        spec_b = campaign.golden_specs()[0]
        assert spec_a.key() == spec_b.key()
        # Index does not enter the key; semantic fields do.
        assert spec_a.key() != campaign.golden_specs()[1].key()

    def test_key_covers_fault_plan_and_overrides(self):
        campaign = _fast_campaign()
        base = RunSpec(config=campaign.config, setting="injection", seed=0)
        plan = FaultPlan(target_type="stage", target="planning", injection_time=3.0)
        with_plan = RunSpec(
            config=campaign.config, setting="injection", seed=0, fault_plan=plan
        )
        with_planner = RunSpec(
            config=campaign.config, setting="injection", seed=0, planner_name="rrt"
        )
        keys = {base.key(), with_plan.key(), with_planner.key()}
        assert len(keys) == 3

    def test_key_covers_detector_training_config(self):
        base = CampaignConfig(environment="farm", training_environments=4)
        other = CampaignConfig(environment="farm", training_environments=6)
        dr_base = RunSpec(config=base, setting="dr", seed=0, detector="gaussian")
        dr_other = RunSpec(config=other, setting="dr", seed=0, detector="gaussian")
        # A detector-bearing spec's result depends on detector training...
        assert dr_base.key() != dr_other.key()
        # ...but detector-free runs resume across detector-config changes.
        golden_base = RunSpec(config=base, setting="golden", seed=0)
        golden_other = RunSpec(config=other, setting="golden", seed=0)
        assert golden_base.key() == golden_other.key()

    def test_specs_are_picklable(self):
        import pickle

        campaign = _fast_campaign()
        specs = campaign.evaluation_specs()
        restored = pickle.loads(pickle.dumps(specs))
        assert [s.key() for s in restored] == [s.key() for s in specs]


class TestWorkerCounts:
    def test_resolve_worker_count(self):
        assert resolve_worker_count(None) == 1
        assert resolve_worker_count(1) == 1
        assert resolve_worker_count(5) == 5
        assert resolve_worker_count(0) == (os.cpu_count() or 1)
        with pytest.raises(ValueError):
            resolve_worker_count(-2)

    def test_env_worker_count(self, monkeypatch):
        monkeypatch.delenv("MAVFI_WORKERS", raising=False)
        assert env_worker_count() == 1
        monkeypatch.setenv("MAVFI_WORKERS", "4")
        assert env_worker_count() == 4
        monkeypatch.setenv("MAVFI_WORKERS", "0")
        assert env_worker_count() == (os.cpu_count() or 1)
        monkeypatch.setenv("MAVFI_WORKERS", "lots")
        with pytest.raises(ValueError):
            env_worker_count()
        monkeypatch.setenv("MAVFI_WORKERS", "-1")
        with pytest.raises(ValueError):
            env_worker_count()

    def test_get_executor_kind(self, monkeypatch):
        monkeypatch.delenv("MAVFI_WORKERS", raising=False)
        assert isinstance(get_executor(), SerialExecutor)
        assert isinstance(get_executor(1), SerialExecutor)
        assert isinstance(get_executor(3), ParallelExecutor)
        monkeypatch.setenv("MAVFI_WORKERS", "2")
        executor = get_executor()
        assert isinstance(executor, ParallelExecutor)
        assert executor.workers == 2

    def test_parallel_chunk_size_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=2, chunk_size=0)


class TestSerialParallelEquivalence:
    def test_identical_result_streams(self):
        campaign = _fast_campaign()
        specs = _small_specs(campaign)
        serial = campaign.run_specs(specs, executor=SerialExecutor())
        parallel = campaign.run_specs(specs, executor=ParallelExecutor(workers=2))
        assert len(serial) == len(parallel) == len(specs)
        for left, right in zip(serial, parallel):
            assert mission_results_equal(left, right)

    def test_one_worker_falls_back_to_serial(self):
        campaign = _fast_campaign(num_golden=2)
        specs = campaign.golden_specs()
        serial = campaign.run_specs(specs, executor=SerialExecutor())
        one_worker = campaign.run_specs(specs, executor=ParallelExecutor(workers=1))
        for left, right in zip(serial, one_worker):
            assert mission_results_equal(left, right)

    def test_many_workers_more_than_specs(self):
        campaign = _fast_campaign(num_golden=2)
        specs = campaign.golden_specs()
        results = campaign.run_specs(specs, executor=ParallelExecutor(workers=16))
        assert len(results) == len(specs)
        assert all(r.setting == RunSetting.GOLDEN for r in results)

    def test_parallel_on_result_streams_every_spec(self):
        campaign = _fast_campaign(num_golden=2)
        specs = _small_specs(campaign)
        seen = []
        campaign.run_specs(
            specs,
            executor=ParallelExecutor(workers=2, chunk_size=1),
            on_result=lambda spec, result: seen.append(spec.key()),
        )
        assert sorted(seen) == sorted(spec.key() for spec in specs)


class TestPrefixAffinityScheduling:
    @pytest.fixture(autouse=True)
    def _engine_defaults(self, monkeypatch):
        """Default engine knobs for every scheduling test.

        The stats-aggregation and snapshot-adoption tests assert checkpoint
        bookkeeping, which the ``REPRO_NO_CACHE``/``REPRO_NO_CHECKPOINT``
        escape hatches (exercised suite-wide by a CI leg) would disable.
        Worker processes inherit the cleaned environment on fork and spawn.
        """
        from repro.core import checkpoint
        from repro.pipeline import builder

        monkeypatch.delenv(checkpoint.NO_CHECKPOINT_ENV, raising=False)
        monkeypatch.delenv(checkpoint.CHECKPOINT_VERIFY_ENV, raising=False)
        monkeypatch.delenv(builder.NO_CACHE_ENV, raising=False)
        checkpoint.reset_checkpoint_caches()
        builder.reset_world_cache()
        yield
        checkpoint.reset_checkpoint_caches()
        builder.reset_world_cache()

    def test_prefix_groups_partition_and_order(self):
        """Groups cover every spec once, never mix prefixes, and order each
        group by ascending fault-activation time with golden runs last."""
        campaign = _fast_campaign(num_golden=3, num_injections_per_stage=2)
        specs = _small_specs(campaign)
        groups = prefix_groups(list(enumerate(specs)))
        positions = sorted(pos for group in groups for pos, _ in group)
        assert positions == list(range(len(specs)))
        keys = [{spec.prefix_key() for _, spec in group} for group in groups]
        assert all(len(group_keys) == 1 for group_keys in keys)
        flat = [group_keys.pop() for group_keys in keys]
        assert len(set(flat)) == len(flat)
        for group in groups:
            activations = [
                float(s.fault_plan.injection_time) if s.fault_plan else float("inf")
                for _, s in group
            ]
            assert activations == sorted(activations)

    def test_group_tasks_are_lpt_ordered_whole_groups(self):
        campaign = _fast_campaign(num_golden=2, num_injections_per_stage=2)
        specs = _small_specs(campaign)
        executor = ParallelExecutor(workers=2)
        tasks = executor._group_tasks(specs)
        # Default chunk: one whole prefix group per pool task, costliest first
        # (LPT), so the FIFO pool rebalances stragglers by whole groups.
        assert all(len(task) == 1 for task in tasks)
        costs = [estimate_group_cost(task[0]) for task in tasks]
        assert costs == sorted(costs, reverse=True)
        chunked = ParallelExecutor(workers=2, chunk_size=2)._group_tasks(specs)
        assert all(len(task) <= 2 for task in chunked)
        assert sum(len(task) for task in chunked) == len(tasks)

    def test_estimate_group_cost_scales_with_suffix_work(self):
        campaign = _fast_campaign(num_golden=1, num_injections_per_stage=1)
        specs = _small_specs(campaign)
        [group] = prefix_groups(list(enumerate(specs)))
        assert estimate_group_cost(group) > estimate_group_cost(group[:1]) > 0
        assert estimate_group_cost([]) == 0.0

    def test_cpu_clamp_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        campaign = _fast_campaign(num_golden=2)
        specs = campaign.golden_specs()
        executor = ParallelExecutor(workers=4, oversubscribe=False)
        results = campaign.run_specs(specs, executor=executor)
        assert executor.last_effective_workers == 1
        assert executor.last_checkpoint_stats is not None
        assert executor.last_checkpoint_stats.duplicate_cursor_builds == 0
        reference = campaign.run_specs(specs, executor=SerialExecutor())
        for left, right in zip(reference, results):
            assert mission_results_equal(left, right)

    def test_oversubscribe_flag_and_env(self, monkeypatch):
        monkeypatch.setenv("MAVFI_OVERSUBSCRIBE", "1")
        assert oversubscription_allowed()
        assert ParallelExecutor(workers=2).oversubscribe
        monkeypatch.setenv("MAVFI_OVERSUBSCRIBE", "0")
        assert not oversubscription_allowed()
        assert not ParallelExecutor(workers=2).oversubscribe
        # The constructor argument wins over the environment.
        assert ParallelExecutor(workers=2, oversubscribe=True).oversubscribe

    def test_fleet_stats_aggregate_across_workers(self):
        campaign = _fast_campaign(num_golden=2, num_injections_per_stage=1)
        specs = _small_specs(campaign)
        executor = ParallelExecutor(workers=2, oversubscribe=True)
        campaign.run_specs(specs, executor=executor)
        stats = executor.last_checkpoint_stats
        assert stats is not None
        assert executor.last_effective_workers == 2
        injections = sum(1 for s in specs if s.fault_plan is not None)
        assert stats.forks == injections
        assert stats.golden_served == 2
        # The scheduler's invariant: no golden prefix flown twice anywhere in
        # the fleet, and every prefix accounted for exactly once.
        assert stats.duplicate_cursor_builds == 0
        assert set(stats.built_prefixes) == {s.prefix_key() for s in specs}

    def test_spawn_workers_adopt_snapshots(self):
        """Spawn-started workers restore shipped cursor snapshots instead of
        rebuilding, and still match the serial stream bit for bit."""
        campaign = _fast_campaign(num_golden=2, num_injections_per_stage=1)
        specs = _small_specs(campaign)
        serial = campaign.run_specs(specs, executor=SerialExecutor())
        executor = ParallelExecutor(
            workers=2, start_method="spawn", oversubscribe=True
        )
        parallel = campaign.run_specs(specs, executor=executor)
        for left, right in zip(serial, parallel):
            assert mission_results_equal(left, right)
        stats = executor.last_checkpoint_stats
        assert stats is not None
        assert stats.snapshots_restored >= 1
        assert stats.duplicate_cursor_builds == 0


class TestDetectorResolution:
    def test_unknown_detector_tag_rejected(self):
        campaign = _fast_campaign()
        spec = RunSpec(
            config=campaign.config, setting="dr", seed=0, detector="mystery"
        )
        with pytest.raises(ValueError):
            execute_spec(spec)

    def test_campaign_rejects_unknown_tag_string(self):
        campaign = _fast_campaign()
        with pytest.raises(ValueError):
            campaign.run_stage_injections(RunSetting.DR_GAUSSIAN, detector="mystery")

    def test_custom_detector_object_runs_serially(self, trained_gad):
        campaign = _fast_campaign(num_golden=1)
        records = campaign.run_stage_injections(
            RunSetting.DR_GAUSSIAN,
            detector=trained_gad,
            count_per_stage=1,
            stages=("planning",),
        )
        assert len(records) == 1
        assert records[0].detection_checked_samples > 0

    def test_parallel_rejects_custom_detector_before_flying(self, trained_gad):
        campaign = _fast_campaign(num_golden=1)
        with pytest.raises(ValueError, match="worker processes"):
            campaign.run_stage_injections(
                RunSetting.DR_GAUSSIAN,
                detector=trained_gad,
                count_per_stage=1,
                stages=("planning",),
                executor=ParallelExecutor(workers=2),
            )

    def test_parallel_rejects_uncached_inmemory_detectors(self, trained_gad):
        """In-memory gad/aad without a cache dir cannot go distributed."""
        campaign = Campaign(
            CampaignConfig(environment="farm", num_golden=1, mission_time_limit=60.0),
            gad=trained_gad,
        )
        specs = campaign.stage_injection_specs(
            RunSetting.DR_GAUSSIAN, detector=DETECTOR_GAUSSIAN, stages=("planning",)
        )
        with pytest.raises(ValueError, match="detector_cache_dir"):
            campaign.run_specs(specs, executor=ParallelExecutor(workers=2))

    def test_dr_equivalence_with_cached_detectors(self, tmp_path):
        """Serial and parallel D&R runs agree when detectors come from a cache."""
        config = CampaignConfig(
            environment="farm",
            num_golden=1,
            num_injections_per_stage=1,
            mission_time_limit=60.0,
            training_environments=2,
            detector_cache_dir=tmp_path,
        )
        serial_campaign = Campaign(config)
        specs = serial_campaign.stage_injection_specs(
            RunSetting.DR_GAUSSIAN, detector=DETECTOR_GAUSSIAN, stages=("planning",)
        )
        serial = serial_campaign.run_specs(specs, executor=SerialExecutor())
        parallel = Campaign(config).run_specs(
            specs, executor=ParallelExecutor(workers=2)
        )
        for left, right in zip(serial, parallel):
            assert mission_results_equal(left, right)


class TestResume:
    def test_resume_skips_completed_specs(self, tmp_path):
        campaign = _fast_campaign()
        specs = _small_specs(campaign)
        store = JsonlResultStore(tmp_path / "results.jsonl")

        first = campaign.run_specs(specs[:2], store=store)
        assert len(store) == 2

        executed = []
        rest = campaign.run_specs(
            specs,
            store=store,
            on_result=lambda spec, result: executed.append(spec.key()),
        )
        # Only the specs missing from the store were re-flown...
        assert sorted(executed) == sorted(spec.key() for spec in specs[2:])
        assert len(store) == len(specs)
        # ...and the merged stream matches a from-scratch serial run.
        scratch = Campaign(campaign.config).run_specs(specs)
        for left, right in zip(rest, scratch):
            assert mission_results_equal(left, right)
        for left, right in zip(first, rest[:2]):
            assert mission_results_equal(left, right)

    def test_resume_tolerates_torn_tail(self, tmp_path):
        campaign = _fast_campaign(num_golden=2)
        specs = campaign.golden_specs()
        store = JsonlResultStore(tmp_path / "results.jsonl")
        campaign.run_specs(specs, store=store)
        # Simulate a campaign killed mid-write: truncate the final record.
        # (Execution -- and therefore file -- order is cache-friendly, not
        # submission order, so derive which spec survived from the store.)
        raw = store.path.read_text()
        store.path.write_text(raw[: len(raw) - 40])
        surviving = store.completed_keys()
        assert len(surviving) == 1
        torn = [spec.key() for spec in specs if spec.key() not in surviving]

        executed = []
        results = campaign.run_specs(
            specs,
            store=store,
            on_result=lambda spec, result: executed.append(spec.key()),
        )
        assert executed == torn
        assert len(results) == 2

    def test_resume_of_complete_dr_campaign_skips_detector_training(
        self, tmp_path, monkeypatch
    ):
        config = CampaignConfig(
            environment="farm",
            num_golden=1,
            num_injections_per_stage=1,
            mission_time_limit=60.0,
            training_environments=2,
            detector_cache_dir=tmp_path / "cache",
        )
        campaign = Campaign(config)
        specs = campaign.stage_injection_specs(
            RunSetting.DR_GAUSSIAN, detector=DETECTOR_GAUSSIAN, stages=("planning",)
        )
        store = JsonlResultStore(tmp_path / "results.jsonl")
        first = campaign.run_specs(specs, store=store)

        def explode(self):
            raise AssertionError("resume must not retrain detectors")

        monkeypatch.setattr(Campaign, "ensure_detectors", explode)
        resumed = Campaign(config).run_specs(specs, store=store)
        for left, right in zip(first, resumed):
            assert mission_results_equal(left, right)

    def test_no_resume_reruns_everything(self, tmp_path):
        campaign = _fast_campaign(num_golden=2)
        specs = campaign.golden_specs()
        store = JsonlResultStore(tmp_path / "results.jsonl")
        campaign.run_specs(specs, store=store)
        executed = []
        campaign.run_specs(
            specs,
            store=store,
            resume=False,
            on_result=lambda spec, result: executed.append(spec.key()),
        )
        assert len(executed) == len(specs)

    def test_duplicate_specs_run_once(self, tmp_path):
        campaign = _fast_campaign(num_golden=1)
        spec = campaign.golden_specs()[0]
        executed = []
        results = execute_specs(
            [spec, spec, spec],
            on_result=lambda s, r: executed.append(s.key()),
        )
        assert len(executed) == 1
        assert len(results) == 3
        assert mission_results_equal(results[0], results[2])
        # Duplicates are independent records, not aliases of one object.
        assert results[0] is not results[2]
        results[0].fault_description = "mutated"
        assert results[2].fault_description != "mutated"


class TestCampaignThroughEngine:
    def test_full_evaluation_parallel_matches_serial(self, tmp_path):
        config = CampaignConfig(
            environment="farm",
            num_golden=2,
            num_injections_per_stage=1,
            mission_time_limit=60.0,
            training_environments=2,
            detector_cache_dir=tmp_path,
        )
        serial = Campaign(config).full_evaluation(executor=SerialExecutor())
        parallel = Campaign(config).full_evaluation(
            executor=ParallelExecutor(workers=2)
        )
        assert serial.settings() == parallel.settings()
        for setting in serial.settings():
            for left, right in zip(
                serial.results(setting), parallel.results(setting)
            ):
                assert mission_results_equal(left, right)

    def test_run_all_is_full_evaluation(self, tmp_path):
        config = CampaignConfig(
            environment="farm",
            num_golden=1,
            num_injections_per_stage=1,
            mission_time_limit=60.0,
            training_environments=2,
            detector_cache_dir=tmp_path,
        )
        result = Campaign(config).run_all()
        assert set(result.settings()) == set(RunSetting.ALL)

    def test_kernel_and_state_grouping_preserved(self):
        campaign = _fast_campaign(num_golden=1)
        by_kernel = campaign.run_kernel_injections(
            [("OctoMap", "octomap_generation", "rrt_star")],
            count_per_kernel=1,
            executor=ParallelExecutor(workers=2),
        )
        assert list(by_kernel) == ["OctoMap"]
        assert by_kernel["OctoMap"][0].setting == "kernel:OctoMap"
        by_state = campaign.run_state_injections(
            ["command_vx"], count_per_state=1, executor=ParallelExecutor(workers=2)
        )
        assert by_state["command_vx"][0].fault_target == "command_vx"

    def test_default_executor_attribute_used(self):
        campaign = Campaign(
            CampaignConfig(environment="farm", num_golden=2, mission_time_limit=60.0),
            executor=ParallelExecutor(workers=2),
        )
        runs = campaign.run_golden()
        reference = Campaign(campaign.config).run_golden()
        for left, right in zip(runs, reference):
            assert mission_results_equal(left, right)

    def test_run_one_matches_engine_spec_execution(self):
        campaign = _fast_campaign(num_golden=1)
        spec = campaign.golden_specs()[0]
        via_engine = execute_spec(spec)
        via_run_one = campaign.run_one(seed=spec.seed, setting=spec.setting)
        assert mission_result_to_dict(via_engine) == mission_result_to_dict(
            via_run_one
        )
