"""Tests for the single-bit-flip fault primitives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fault import (
    BitField,
    FaultSpec,
    classify_bit,
    corrupt_array_element,
    corrupt_message_field,
    flip_float_bit,
    flip_int_bit,
    numeric_leaf_fields,
    random_bit_for_field,
)
from repro.rosmw.message import (
    CollisionCheckMsg,
    FlightCommandMsg,
    MultiDOFTrajectoryMsg,
    Waypoint,
)


class TestBitPrimitives:
    def test_sign_flip(self):
        assert flip_float_bit(3.5, 63) == -3.5
        assert flip_float_bit(-3.5, 63) == 3.5

    def test_mantissa_flip_is_small(self):
        original = 100.0
        flipped = flip_float_bit(original, 0)
        assert flipped != original
        assert abs(flipped - original) / original < 1e-10

    def test_exponent_flip_is_large(self):
        original = 100.0
        flipped = flip_float_bit(original, 62)
        assert abs(flipped) < 1e-100 or abs(flipped) > 1e100

    def test_double_flip_restores(self):
        value = 123.456
        assert flip_float_bit(flip_float_bit(value, 40), 40) == value

    def test_flip_zero(self):
        assert flip_float_bit(0.0, 62) == 2.0  # exponent bit of +0.0

    def test_invalid_bit_rejected(self):
        with pytest.raises(ValueError):
            flip_float_bit(1.0, 64)
        with pytest.raises(ValueError):
            flip_float_bit(1.0, -1)

    def test_int_flip(self):
        assert flip_int_bit(0, 0) == 1
        assert flip_int_bit(5, 1) == 7
        assert flip_int_bit(1, 31) < 0  # sign bit of a 32-bit int

    def test_int_flip_invalid_bit(self):
        with pytest.raises(ValueError):
            flip_int_bit(1, 32)

    def test_classify_bit(self):
        assert classify_bit(63) == BitField.SIGN
        assert classify_bit(52) == BitField.EXPONENT
        assert classify_bit(62) == BitField.EXPONENT
        assert classify_bit(0) == BitField.MANTISSA

    def test_random_bit_for_field(self):
        rng = np.random.default_rng(0)
        assert random_bit_for_field(rng, BitField.SIGN) == 63
        for _ in range(20):
            assert classify_bit(random_bit_for_field(rng, BitField.EXPONENT)) == BitField.EXPONENT
            assert classify_bit(random_bit_for_field(rng, BitField.MANTISSA)) == BitField.MANTISSA
            assert 0 <= random_bit_for_field(rng, BitField.ANY) <= 63

    def test_fault_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(bit=70)
        assert FaultSpec(bit=63).bit == 63

    @settings(max_examples=60, deadline=None)
    @given(
        value=st.floats(allow_nan=False, allow_infinity=False, width=64),
        bit=st.integers(0, 63),
    )
    def test_flip_is_an_involution(self, value, bit):
        """Property: flipping the same bit twice restores the original value."""
        once = flip_float_bit(value, bit)
        twice = flip_float_bit(once, bit)
        assert twice == value or (np.isnan(twice) and np.isnan(value))


class TestArrayAndMessageCorruption:
    def test_corrupt_array_element(self):
        array = np.ones((4, 3))
        rng = np.random.default_rng(0)
        index = corrupt_array_element(array, rng, bit=63)
        assert array.reshape(-1)[index] == -1.0

    def test_corrupt_empty_array_rejected(self):
        with pytest.raises(ValueError):
            corrupt_array_element(np.zeros((0, 3)), np.random.default_rng(0), bit=1)

    def test_numeric_leaves_of_flight_command(self):
        leaves = numeric_leaf_fields(FlightCommandMsg())
        names = {leaf[2] for leaf in leaves}
        assert names == {"vx", "vy", "vz", "yaw_rate"}

    def test_numeric_leaves_skip_header(self):
        leaves = numeric_leaf_fields(CollisionCheckMsg())
        assert not any("header" in leaf[2] for leaf in leaves)

    def test_numeric_leaves_of_trajectory_include_waypoints(self):
        msg = MultiDOFTrajectoryMsg(waypoints=[Waypoint(x=1.0), Waypoint(x=2.0)])
        names = {leaf[2] for leaf in numeric_leaf_fields(msg)}
        assert "waypoints[0].x" in names
        assert "waypoints[1].vz" in names

    def test_corrupt_message_field_changes_exactly_one_value(self):
        msg = FlightCommandMsg(vx=1.0, vy=2.0, vz=3.0, yaw_rate=4.0)
        rng = np.random.default_rng(3)
        corruption = corrupt_message_field(msg, rng, bit=63)
        values = [msg.vx, msg.vy, msg.vz, msg.yaw_rate]
        originals = [1.0, 2.0, 3.0, 4.0]
        changed = [v for v, o in zip(values, originals) if v != o]
        assert len(changed) == 1
        assert corruption.path in ("vx", "vy", "vz", "yaw_rate")
        assert corruption.bit == 63

    def test_corrupt_message_field_with_suffix_targeting(self):
        msg = MultiDOFTrajectoryMsg(waypoints=[Waypoint(x=5.0, y=1.0, yaw=0.5)])
        rng = np.random.default_rng(0)
        corruption = corrupt_message_field(msg, rng, bit=63, field_name=".y")
        assert corruption.path.endswith(".y")
        assert msg.waypoints[0].y == -1.0
        assert msg.waypoints[0].yaw == 0.5  # .yaw must not match the .y suffix

    def test_corrupt_message_field_no_match_returns_none(self):
        msg = FlightCommandMsg()
        assert corrupt_message_field(msg, np.random.default_rng(0), 5, field_name="nonexistent") is None

    def test_corrupt_integer_field(self):
        msg = CollisionCheckMsg(future_collision_seq=2)
        rng = np.random.default_rng(1)
        corruption = corrupt_message_field(
            msg, rng, bit=4, field_name="future_collision_seq"
        )
        assert corruption.path == "future_collision_seq"
        assert corruption.bit == 4
        assert msg.future_collision_seq != 2

    def test_corrupt_integer_field_records_effective_bit(self):
        # Regression: a float64 bit index (> 31) landing on a 32-bit integer
        # leaf used to be silently clamped to 31 while the metadata kept
        # reporting the requested bit.  The effective bit is now drawn inside
        # the integer's representation and recorded.
        from repro.core.fault import flip_int_bit

        for seed in range(8):
            msg = CollisionCheckMsg(future_collision_seq=2)
            rng = np.random.default_rng(seed)
            corruption = corrupt_message_field(
                msg, rng, bit=63, field_name="future_collision_seq"
            )
            assert 0 <= corruption.bit <= 31
            # The recorded bit is the one that was actually flipped.
            assert msg.future_collision_seq == flip_int_bit(2, corruption.bit)
        # Different seeds must be able to draw different effective bits
        # (a constant clamp to 31 would fail this).
        bits = set()
        for seed in range(16):
            msg = CollisionCheckMsg(future_collision_seq=2)
            corruption = corrupt_message_field(
                msg,
                np.random.default_rng(seed),
                bit=63,
                field_name="future_collision_seq",
            )
            bits.add(corruption.bit)
        assert len(bits) > 1

    def test_corruption_str_embeds_path_and_bit(self):
        msg = FlightCommandMsg(vx=1.0)
        corruption = corrupt_message_field(
            msg, np.random.default_rng(0), bit=62, field_name="vx"
        )
        assert str(corruption) == "vx (bit 62)"
