"""Tests for the PID controller and the path tracking / command issue kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import topics
from repro.control.path_tracking import ControlNode, PathTracker, TrackerConfig
from repro.control.pid import PidController, PidGains
from repro.rosmw.graph import NodeGraph
from repro.rosmw.message import (
    CollisionCheckMsg,
    MissionStatusMsg,
    MultiDOFTrajectoryMsg,
    OdometryMsg,
    Waypoint,
)


class TestPidController:
    def test_proportional_only(self):
        pid = PidController(PidGains(kp=2.0))
        assert pid.update(1.5, 0.1) == pytest.approx(3.0)

    def test_integral_accumulates(self):
        pid = PidController(PidGains(kp=0.0, ki=1.0))
        pid.update(1.0, 1.0)
        assert pid.update(1.0, 1.0) == pytest.approx(2.0)

    def test_integral_clamped(self):
        pid = PidController(PidGains(kp=0.0, ki=1.0, integral_limit=2.0))
        for _ in range(10):
            pid.update(5.0, 1.0)
        assert pid.integral == pytest.approx(2.0)

    def test_derivative_term(self):
        pid = PidController(PidGains(kp=0.0, kd=1.0))
        pid.update(0.0, 0.5)
        assert pid.update(1.0, 0.5) == pytest.approx(2.0)

    def test_derivative_zero_on_first_sample(self):
        pid = PidController(PidGains(kp=0.0, kd=10.0))
        assert pid.update(3.0, 0.1) == 0.0

    def test_output_limit(self):
        pid = PidController(PidGains(kp=100.0, output_limit=5.0))
        assert pid.update(10.0, 0.1) == 5.0
        assert pid.update(-10.0, 0.1) == -5.0

    def test_reset(self):
        pid = PidController(PidGains(ki=1.0, kd=1.0))
        pid.update(2.0, 0.5)
        pid.reset()
        assert pid.integral == 0.0
        assert not pid._has_previous

    def test_invalid_dt_rejected(self):
        with pytest.raises(ValueError):
            PidController().update(1.0, 0.0)


def _straight_waypoints(n=10, spacing=2.0, speed=3.0):
    return [
        Waypoint(x=i * spacing, y=0.0, z=2.0, yaw=0.0, vx=speed, vy=0.0, vz=0.0)
        for i in range(n)
    ]


class TestPathTracker:
    def test_no_waypoints_hover(self):
        tracker = PathTracker()
        cmd = tracker.compute([], np.zeros(3), 0.0, 0.1)
        assert cmd.vx == 0.0 and cmd.vy == 0.0 and cmd.vz == 0.0

    def test_commands_towards_next_waypoint(self):
        tracker = PathTracker()
        waypoints = _straight_waypoints()
        tracker.on_new_trajectory(waypoints, np.array([0.0, 0.0, 2.0]))
        cmd = tracker.compute(waypoints, np.array([0.0, 0.0, 2.0]), 0.0, 0.1)
        assert cmd.vx > 0.5
        assert abs(cmd.vy) < 0.5

    def test_capture_advances_index_as_vehicle_progresses(self):
        tracker = PathTracker(TrackerConfig(capture_radius=1.5))
        waypoints = _straight_waypoints()
        tracker.on_new_trajectory(waypoints, np.array([0.0, 0.0, 2.0]))
        start_index = tracker.current_index
        # Walk the vehicle along the path; the target index must follow.
        for x in np.arange(0.0, 12.0, 0.5):
            tracker.compute(waypoints, np.array([x, 0.0, 2.0]), 0.0, 0.1)
        assert tracker.current_index > start_index + 2

    def test_command_respects_speed_limits(self):
        config = TrackerConfig(max_speed=2.0, max_vertical_speed=0.5)
        tracker = PathTracker(config)
        waypoints = [Waypoint(x=100.0, y=100.0, z=50.0, vx=50.0, vy=50.0, vz=50.0)]
        cmd = tracker.compute(waypoints, np.zeros(3), 0.0, 0.1)
        assert np.hypot(cmd.vx, cmd.vy) <= 2.0 + 1e-6
        assert abs(cmd.vz) <= 0.5 + 1e-6

    def test_unreachable_waypoint_skipped_after_timeout(self):
        config = TrackerConfig(target_timeout=1.0)
        tracker = PathTracker(config)
        waypoints = _straight_waypoints()
        waypoints[2].x = -1e9  # corrupted, unreachable
        tracker.on_new_trajectory(waypoints, np.array([0.0, 0.0, 2.0]))
        tracker.current_index = 2
        for _ in range(15):
            tracker.compute(waypoints, np.array([2.0, 0.0, 2.0]), 0.0, 0.1)
        assert tracker.current_index > 2
        assert tracker.skipped_waypoints >= 1

    def test_corrupted_waypoint_produces_bounded_command(self):
        tracker = PathTracker()
        waypoints = _straight_waypoints()
        waypoints[1].x = 1e300
        waypoints[1].vy = float("nan")
        tracker.current_index = 1
        cmd = tracker.compute(waypoints, np.zeros(3), 0.0, 0.1)
        assert np.isfinite([cmd.vx, cmd.vy, cmd.vz, cmd.yaw_rate]).all()

    def test_brake_scale(self):
        tracker = PathTracker(TrackerConfig(brake_horizon=2.0, min_brake_scale=0.2))
        assert tracker.brake_scale(float("inf")) == 1.0
        assert tracker.brake_scale(3.0) == 1.0
        assert tracker.brake_scale(1.0) == pytest.approx(0.5)
        assert tracker.brake_scale(0.0) == pytest.approx(0.2)

    def test_braking_slows_command(self):
        tracker = PathTracker()
        waypoints = _straight_waypoints()
        tracker.on_new_trajectory(waypoints, np.array([0.0, 0.0, 2.0]))
        fast = tracker.compute(waypoints, np.array([0.0, 0.0, 2.0]), 0.0, 0.1)
        tracker.reset()
        tracker.on_new_trajectory(waypoints, np.array([0.0, 0.0, 2.0]))
        slow = tracker.compute(
            waypoints, np.array([0.0, 0.0, 2.0]), 0.0, 0.1, time_to_collision=0.5
        )
        assert abs(slow.vx) < abs(fast.vx)

    def test_yaw_rate_towards_target_heading(self):
        tracker = PathTracker()
        waypoints = [Waypoint(x=0.0, y=10.0, z=2.0, yaw=np.pi / 2)]
        cmd = tracker.compute(waypoints, np.zeros(3), 0.0, 0.1)
        assert cmd.yaw_rate > 0

    @settings(max_examples=30, deadline=None)
    @given(
        px=st.floats(-50, 50), py=st.floats(-50, 50), pz=st.floats(0, 10),
        ttc=st.floats(0, 10),
    )
    def test_command_always_finite_and_bounded(self, px, py, pz, ttc):
        """Property: the issued command is always finite and inside the envelope."""
        config = TrackerConfig()
        tracker = PathTracker(config)
        waypoints = _straight_waypoints()
        cmd = tracker.compute(
            waypoints, np.array([px, py, pz]), 0.0, 0.1, time_to_collision=ttc
        )
        values = [cmd.vx, cmd.vy, cmd.vz, cmd.yaw_rate]
        assert np.isfinite(values).all()
        assert np.hypot(cmd.vx, cmd.vy) <= config.max_speed + 1e-6
        assert abs(cmd.vz) <= config.max_vertical_speed + 1e-6


class TestControlNode:
    def _graph(self):
        graph = NodeGraph()
        node = ControlNode(control_rate=10.0)
        graph.add_node(node)
        graph.start_all()
        return graph, node

    def _feed(self, graph, position=(0.0, 0.0, 2.0)):
        graph.topic_bus.publish(
            topics.TRAJECTORY, MultiDOFTrajectoryMsg(waypoints=_straight_waypoints())
        )
        graph.topic_bus.publish(
            topics.ODOMETRY, OdometryMsg(position=np.asarray(position, float))
        )

    def test_publishes_commands_at_control_rate(self):
        graph, node = self._graph()
        self._feed(graph)
        graph.spin_until(1.0)
        assert graph.topic_bus.publish_count(topics.FLIGHT_COMMAND) >= 9

    def test_no_command_without_odometry(self):
        graph, node = self._graph()
        graph.spin_until(1.0)
        assert graph.topic_bus.publish_count(topics.FLIGHT_COMMAND) == 0

    def test_hover_after_mission_completed(self):
        graph, node = self._graph()
        self._feed(graph)
        graph.topic_bus.publish(
            topics.MISSION_STATUS, MissionStatusMsg(goal=np.zeros(3), completed=True)
        )
        graph.spin_until(1.0)
        cmd = graph.topic_bus.last_message(topics.FLIGHT_COMMAND)
        assert cmd.vx == 0.0 and cmd.vy == 0.0

    def test_braking_on_collision_warning(self):
        graph, node = self._graph()
        self._feed(graph)
        graph.spin_until(0.5)
        fast = graph.topic_bus.last_message(topics.FLIGHT_COMMAND)
        graph.topic_bus.publish(
            topics.COLLISION_CHECK, CollisionCheckMsg(time_to_collision=0.3)
        )
        graph.spin_until(1.0)
        slow = graph.topic_bus.last_message(topics.FLIGHT_COMMAND)
        assert np.hypot(slow.vx, slow.vy) < np.hypot(fast.vx, fast.vy)

    def test_recompute_republishes_command(self):
        graph, node = self._graph()
        self._feed(graph)
        graph.spin_until(0.5)
        count = graph.topic_bus.publish_count(topics.FLIGHT_COMMAND)
        assert node.recompute()
        assert graph.topic_bus.publish_count(topics.FLIGHT_COMMAND) == count + 1
        assert node.accounting.categories.get("recovery", 0.0) > 0

    def test_corrupt_internal_variants(self):
        graph, node = self._graph()
        self._feed(graph)
        graph.spin_until(0.5)
        rng = np.random.default_rng(0)
        descriptions = {node.corrupt_internal(rng, bit=40) for _ in range(12)}
        assert any("PID integral" in d or "trajectory" in d or "command" in d for d in descriptions)

    def test_corrupting_tracked_trajectory_does_not_touch_shared_message(self):
        graph, node = self._graph()
        shared = MultiDOFTrajectoryMsg(waypoints=_straight_waypoints())
        graph.topic_bus.publish(topics.TRAJECTORY, shared)
        graph.topic_bus.publish(topics.ODOMETRY, OdometryMsg(position=np.zeros(3)))
        original = [w.x for w in shared.waypoints]
        rng = np.random.default_rng(1)
        for _ in range(8):
            node.corrupt_internal(rng, bit=63)
        assert [w.x for w in shared.waypoints] == original

    def test_reset_kernel(self):
        graph, node = self._graph()
        self._feed(graph)
        graph.spin_until(0.5)
        node.reset_kernel()
        assert node._latest_trajectory is None
        assert node.kernel.current_index == 0
