"""Tests for the scenario subsystem: specs, registry, wind, degradation,
multi-waypoint missions and end-to-end campaign integration."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.executor import (
    ParallelExecutor,
    RunSpec,
    SerialExecutor,
    execute_spec,
    materialize_scenario,
)
from repro.core.results import (
    JsonlResultStore,
    mission_result_from_dict,
    mission_result_to_dict,
    mission_results_equal,
)
from repro.pipeline.builder import PipelineConfig, build_pipeline
from repro.scenarios import (
    MissionPlan,
    Scenario,
    get_scenario,
    iter_scenarios,
    register_scenario,
    resolve_scenario,
    scenario_names,
)
from repro.sim.degradation import SensorDegradation, SensorDegradationConfig
from repro.sim.sensors import CameraConfig, DepthCamera
from repro.sim.vehicle import QuadrotorDynamics, QuadrotorState
from repro.sim.wind import WindConfig, WindModel
from repro.sim.world import Cuboid, World

#: A fast scenario exercising every axis at once: wind + degraded sensors +
#: a survey waypoint, in the obstacle-light Farm so missions stay quick.
STRESS_SCENARIO = Scenario(
    name="test-windy-patrol",
    environment="farm",
    wind=WindConfig(mean=(0.8, 0.4, 0.0), gust_intensity=1.0),
    sensors=SensorDegradationConfig(
        depth_dropout=0.05, depth_quantization=0.25, imu_noise_scale=5.0
    ),
    mission=MissionPlan(waypoints=((20.0, 10.0, 2.0),)),
)


class TestRegistry:
    def test_presets_registered(self):
        names = scenario_names()
        assert len(names) >= 8
        for expected in ("calm-sparse", "gusty-dense", "foggy-factory", "patrol-farm"):
            assert expected in names

    def test_presets_cover_new_environment_families(self):
        environments = {s.environment for s in iter_scenarios()}
        assert "forest" in environments
        assert "urban_canyon" in environments

    def test_get_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_guarded(self):
        scenario = get_scenario("calm-sparse")
        with pytest.raises(ValueError):
            register_scenario(scenario)
        assert register_scenario(scenario, overwrite=True) is scenario

    def test_resolve_scenario(self):
        assert resolve_scenario(None) is None
        assert resolve_scenario("calm-sparse").name == "calm-sparse"
        assert resolve_scenario(STRESS_SCENARIO) is STRESS_SCENARIO

    def test_scenarios_pickle_unchanged(self):
        for scenario in [*iter_scenarios(), STRESS_SCENARIO]:
            assert pickle.loads(pickle.dumps(scenario)) == scenario

    def test_canonical_is_deterministic_and_content_sensitive(self):
        a = STRESS_SCENARIO.canonical()
        assert a == STRESS_SCENARIO.canonical()
        other = Scenario(
            name="test-windy-patrol",
            environment="farm",
            wind=WindConfig(mean=(0.8, 0.4, 0.0), gust_intensity=2.0),
        )
        assert other.canonical() != a


class TestWindModel:
    def test_disabled_by_default(self):
        assert not WindConfig().enabled
        assert WindConfig(mean=(1.0, 0.0, 0.0)).enabled
        assert WindConfig(gust_intensity=0.5).enabled

    def test_constant_wind_without_gusts(self):
        model = WindModel(WindConfig(mean=(2.0, -1.0, 0.0)), seed=0)
        for _ in range(5):
            assert np.allclose(model.sample(0.05), [2.0, -1.0, 0.0])

    def test_gusts_deterministic_per_seed(self):
        config = WindConfig(gust_intensity=1.5)
        a = WindModel(config, seed=7)
        b = WindModel(config, seed=7)
        other = WindModel(config, seed=8)
        seq_a = np.array([a.sample(0.05) for _ in range(50)])
        seq_b = np.array([b.sample(0.05) for _ in range(50)])
        seq_c = np.array([other.sample(0.05) for _ in range(50)])
        assert np.array_equal(seq_a, seq_b)
        assert not np.array_equal(seq_a, seq_c)

    def test_gust_magnitude_tracks_intensity(self):
        model = WindModel(WindConfig(gust_intensity=1.0, gust_time_constant=0.5), seed=3)
        samples = np.array([model.sample(0.05) for _ in range(4000)])
        # Stationary per-axis std approaches the configured intensity
        # (vertical axis is scaled down).
        assert samples[:, 0].std() == pytest.approx(1.0, rel=0.15)
        assert samples[:, 2].std() < samples[:, 0].std()

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            WindConfig(gust_intensity=-1.0)
        with pytest.raises(ValueError):
            WindConfig(gust_time_constant=0.0)

    def test_wind_drifts_the_vehicle(self):
        calm = QuadrotorDynamics()
        windy = QuadrotorDynamics(
            wind_model=WindModel(WindConfig(mean=(0.0, 2.0, 0.0)), seed=0)
        )
        for _ in range(40):
            calm.step(np.array([2.0, 0.0, 0.0]), 0.0, 0.05)
            windy.step(np.array([2.0, 0.0, 0.0]), 0.0, 0.05)
        assert calm.state.position[1] == pytest.approx(0.0)
        # 2 m/s crosswind for 2 s -> ~4 m of lateral drift.
        assert windy.state.position[1] == pytest.approx(4.0, abs=0.2)
        assert windy.state.position[0] == pytest.approx(calm.state.position[0])


class TestSensorDegradation:
    def _depth_image(self):
        world = World(name="deg")
        world.add_obstacle(Cuboid.from_center((8.0, 0.0, 3.0), (2.0, 30.0, 6.0)))
        camera = DepthCamera(world, CameraConfig(width=24, height=18, max_range=25.0))
        return camera.capture(QuadrotorState(position=np.array([0.0, 0.0, 2.0])))

    def test_disabled_by_default(self):
        assert not SensorDegradationConfig().enabled
        assert SensorDegradationConfig(depth_dropout=0.1).enabled
        assert SensorDegradationConfig(imu_noise_scale=2.0).enabled

    def test_dropout_fraction(self):
        config = SensorDegradationConfig(depth_dropout=0.3)
        layer = SensorDegradation(config, seed=0)
        msg = self._depth_image()
        finite_before = int(np.isfinite(msg.depth).sum())
        layer.degrade_depth(msg)
        finite_after = int(np.isfinite(msg.depth).sum())
        dropped = 1.0 - finite_after / finite_before
        assert dropped == pytest.approx(0.3, abs=0.1)

    def test_quantization_rounds_ranges(self):
        layer = SensorDegradation(SensorDegradationConfig(depth_quantization=0.5), seed=0)
        msg = layer.degrade_depth(self._depth_image())
        finite = msg.depth[np.isfinite(msg.depth)]
        assert np.allclose(finite % 0.5, 0.0, atol=1e-9)

    def test_fog_shortens_range(self):
        msg = self._depth_image()
        far_before = int((np.isfinite(msg.depth) & (msg.depth > 10.0)).sum())
        assert far_before > 0  # the ground plane provides far returns
        layer = SensorDegradation(SensorDegradationConfig(depth_range_scale=0.4), seed=0)
        layer.degrade_depth(msg)
        assert msg.max_range == pytest.approx(10.0)
        assert not np.any(np.isfinite(msg.depth) & (msg.depth > 10.0))

    def test_degradation_deterministic_per_seed(self):
        config = SensorDegradationConfig(depth_dropout=0.2)
        a = SensorDegradation(config, seed=5).degrade_depth(self._depth_image())
        b = SensorDegradation(config, seed=5).degrade_depth(self._depth_image())
        assert np.array_equal(a.depth, b.depth)

    def test_imu_and_odometry_configs_scaled(self):
        config = SensorDegradationConfig(
            imu_noise_scale=10.0,
            odometry_position_noise=0.2,
            odometry_velocity_noise=0.1,
        )
        layer = SensorDegradation(config, seed=0)
        imu = layer.imu_config()
        assert imu.accel_noise_std == pytest.approx(0.2)
        odom = layer.odometry_config()
        assert odom.position_noise_std == pytest.approx(0.2)
        assert odom.velocity_noise_std == pytest.approx(0.1)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            SensorDegradationConfig(depth_dropout=1.5)
        with pytest.raises(ValueError):
            SensorDegradationConfig(depth_range_scale=0.0)


class TestBuilderThreading:
    def test_scenario_overrides_environment(self):
        handles = build_pipeline(PipelineConfig(environment="dense", scenario="patrol-farm"))
        assert handles.world.name == "farm"
        assert handles.extras["scenario"].name == "patrol-farm"

    def test_scenario_name_resolves_from_registry(self):
        handles = build_pipeline(PipelineConfig(scenario="gusty-dense"))
        assert handles.airsim.vehicle.wind_model is not None
        assert handles.airsim.degradation is None

    def test_degradation_and_waypoints_threaded(self):
        handles = build_pipeline(PipelineConfig(scenario=STRESS_SCENARIO))
        assert handles.airsim.degradation is not None
        assert handles.airsim.vehicle.wind_model is not None
        # Both the simulator and the mission planner see the full route.
        assert len(handles.airsim.mission.route()) == 2
        planner = handles.kernels["mission_planner"]
        assert len(planner.route) == 2
        assert np.allclose(planner.route[0], [20.0, 10.0, 2.0])

    def test_overridden_endpoints_nudged_out_of_obstacles(self):
        from repro.sim.environments import make_environment

        world = make_environment("dense", seed=0)
        blocked = world.obstacles[0].center.copy()
        blocked[2] = 2.0
        scenario = Scenario(
            name="test-blocked-goal",
            environment="dense",
            mission=MissionPlan(goal=tuple(float(v) for v in blocked)),
        )
        handles = build_pipeline(
            PipelineConfig(scenario=scenario, start_jitter_std=0.0)
        )
        goal = np.asarray(handles.airsim.mission.goal, dtype=float)
        assert handles.world.distance_to_nearest(goal) >= 2.0

    def test_no_scenario_leaves_pipeline_untouched(self):
        handles = build_pipeline(PipelineConfig(environment="farm"))
        assert handles.airsim.vehicle.wind_model is None
        assert handles.airsim.degradation is None
        assert "scenario" not in handles.extras
        assert len(handles.kernels["mission_planner"].route) == 1


def _campaign(scenario=None, num_golden=3) -> Campaign:
    return Campaign(
        CampaignConfig(
            environment="farm",
            scenario=scenario,
            num_golden=num_golden,
            num_injections_per_stage=1,
            mission_time_limit=60.0,
        )
    )


class TestSpecIntegration:
    def test_spec_key_depends_on_scenario(self):
        campaign = _campaign()
        base = RunSpec(config=campaign.config, setting="golden", seed=0)
        scenario_spec = RunSpec(
            config=campaign.config, setting="golden", seed=0, scenario="calm-sparse"
        )
        assert base.key() != scenario_spec.key()
        # A campaign-wide scenario and a per-spec scenario describe the same
        # mission, so they share a key (and therefore resume records).
        via_config = RunSpec(
            config=_campaign(scenario="calm-sparse").config, setting="golden", seed=0
        )
        assert via_config.key() == scenario_spec.key()

    def test_materialize_scenario_pins_names_to_objects(self):
        # Scenario names resolve through the process-local registry; specs
        # shipped to spawned workers must carry the resolved object instead
        # (a custom registration would be unknown in the worker process).
        campaign = _campaign(scenario="patrol-farm")
        by_name = RunSpec(config=campaign.config, setting="golden", seed=0)
        pinned = materialize_scenario(by_name)
        assert isinstance(pinned.scenario, Scenario)
        assert pinned.scenario.name == "patrol-farm"
        assert pinned.key() == by_name.key()
        # Specs already carrying the object pass through untouched.
        direct = RunSpec(
            config=_campaign().config, setting="golden", seed=0, scenario=STRESS_SCENARIO
        )
        assert materialize_scenario(direct) is direct
        assert materialize_scenario(RunSpec(config=_campaign().config, setting="golden", seed=0)).scenario is None

    def test_mission_result_records_scenario(self):
        campaign = _campaign(scenario="patrol-farm", num_golden=1)
        result = execute_spec(campaign.golden_specs()[0])
        assert result.scenario == "patrol-farm"

    def test_scenario_jsonl_round_trip(self, tmp_path):
        campaign = _campaign(scenario=STRESS_SCENARIO, num_golden=1)
        result = execute_spec(campaign.golden_specs()[0])
        assert result.scenario == "test-windy-patrol"
        data = mission_result_to_dict(result)
        assert data["scenario"] == "test-windy-patrol"
        assert mission_results_equal(result, mission_result_from_dict(data))
        store = JsonlResultStore(tmp_path / "scenario.jsonl")
        store.append("k", result)
        loaded = store.load_results()["k"]
        assert loaded.scenario == "test-windy-patrol"
        assert mission_results_equal(result, loaded)

    def test_legacy_records_without_scenario_field_load(self):
        campaign = _campaign(num_golden=1)
        result = execute_spec(campaign.golden_specs()[0])
        data = mission_result_to_dict(result)
        del data["scenario"]
        assert mission_result_from_dict(data).scenario == ""

    def test_scenario_sweep_groups_by_name(self):
        campaign = _campaign(num_golden=1)
        by_scenario = campaign.run_scenario_sweep(["patrol-farm", "blind-farm"])
        assert sorted(by_scenario) == ["blind-farm", "patrol-farm"]
        for name, records in by_scenario.items():
            assert all(r.scenario == name for r in records)

    def test_full_evaluation_accepts_scenarios(self, monkeypatch):
        monkeypatch.setenv("MAVFI_RUNS", "0.01")
        campaign = _campaign(num_golden=1)
        outcome = campaign.full_evaluation(scenarios=["patrol-farm"])
        assert "scenario:patrol-farm" in outcome.settings()

    def test_serial_and_parallel_bit_identical_under_stress_scenario(self):
        campaign = _campaign(scenario=STRESS_SCENARIO, num_golden=3)
        specs = campaign.golden_specs()
        serial = SerialExecutor().map(specs)
        parallel = ParallelExecutor(workers=2).map(specs)
        assert len(serial) == len(parallel) == 3
        for a, b in zip(serial, parallel):
            assert mission_results_equal(a, b)
        assert all(r.scenario == "test-windy-patrol" for r in serial)

    def test_scenario_sweep_resumes_from_store(self, tmp_path):
        campaign = _campaign(num_golden=1)
        store = JsonlResultStore(tmp_path / "sweep.jsonl")
        first = campaign.run_scenario_sweep(["patrol-farm"], store=store)
        recorded = len(store)
        again = campaign.run_scenario_sweep(["patrol-farm"], store=store)
        assert len(store) == recorded  # nothing re-flown
        assert mission_results_equal(
            first["patrol-farm"][0], again["patrol-farm"][0]
        )
