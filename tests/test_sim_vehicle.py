"""Tests for the quadrotor kinematics model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.vehicle import QuadrotorDynamics, QuadrotorParams, QuadrotorState


class TestQuadrotorParams:
    def test_defaults_valid(self):
        params = QuadrotorParams()
        assert params.max_speed > 0

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            QuadrotorParams(max_speed=-1.0)
        with pytest.raises(ValueError):
            QuadrotorParams(velocity_time_constant=0.0)


class TestDynamics:
    def test_tracks_constant_command(self):
        dyn = QuadrotorDynamics()
        for _ in range(100):
            dyn.step(np.array([2.0, 0.0, 0.0]), 0.0, 0.05)
        assert dyn.state.velocity[0] == pytest.approx(2.0, abs=0.1)
        assert dyn.state.position[0] > 5.0

    def test_speed_limited(self):
        dyn = QuadrotorDynamics(QuadrotorParams(max_speed=3.0))
        for _ in range(200):
            dyn.step(np.array([50.0, 0.0, 0.0]), 0.0, 0.05)
        assert np.linalg.norm(dyn.state.velocity[:2]) <= 3.0 + 1e-6

    def test_vertical_speed_limited(self):
        dyn = QuadrotorDynamics(QuadrotorParams(max_vertical_speed=1.0))
        for _ in range(100):
            dyn.step(np.array([0.0, 0.0, 10.0]), 0.0, 0.05)
        assert dyn.state.velocity[2] <= 1.0 + 1e-6

    def test_acceleration_limited(self):
        params = QuadrotorParams(max_acceleration=2.0)
        dyn = QuadrotorDynamics(params)
        previous = dyn.state.velocity.copy()
        dyn.step(np.array([10.0, 0.0, 0.0]), 0.0, 0.1)
        dv = np.linalg.norm(dyn.state.velocity - previous)
        assert dv <= params.max_acceleration * 0.1 + 1e-9

    def test_nan_command_treated_as_zero(self):
        dyn = QuadrotorDynamics()
        dyn.step(np.array([np.nan, np.inf, -np.inf]), np.nan, 0.1)
        assert np.all(np.isfinite(dyn.state.velocity))
        assert np.all(np.isfinite(dyn.state.position))

    def test_huge_command_is_clipped_not_propagated(self):
        dyn = QuadrotorDynamics()
        dyn.step(np.array([1e300, -1e300, 1e300]), 0.0, 0.1)
        assert np.all(np.isfinite(dyn.state.velocity))

    def test_yaw_integrates_and_wraps(self):
        dyn = QuadrotorDynamics(QuadrotorParams(max_yaw_rate=10.0))
        for _ in range(100):
            dyn.step(np.zeros(3), 1.0, 0.1)
        assert -np.pi < dyn.state.yaw <= np.pi

    def test_yaw_rate_clipped(self):
        dyn = QuadrotorDynamics(QuadrotorParams(max_yaw_rate=0.5))
        dyn.step(np.zeros(3), 100.0, 0.1)
        assert dyn.state.yaw_rate == pytest.approx(0.5)

    def test_energy_and_distance_accumulate(self):
        dyn = QuadrotorDynamics()
        for _ in range(50):
            dyn.step(np.array([3.0, 0.0, 0.0]), 0.0, 0.1)
        assert dyn.distance_travelled > 5.0
        assert dyn.energy_used > 0.0

    def test_power_grows_with_speed(self):
        dyn = QuadrotorDynamics()
        assert dyn.power(5.0) > dyn.power(0.0)

    def test_reset(self):
        dyn = QuadrotorDynamics()
        dyn.step(np.array([1.0, 0, 0]), 0.0, 0.1)
        dyn.reset(QuadrotorState(position=np.array([1.0, 2.0, 3.0])))
        assert np.allclose(dyn.state.position, [1, 2, 3])
        assert dyn.distance_travelled == 0.0
        assert dyn.energy_used == 0.0

    def test_invalid_dt_rejected(self):
        dyn = QuadrotorDynamics()
        with pytest.raises(ValueError):
            dyn.step(np.zeros(3), 0.0, 0.0)

    def test_state_copy_is_independent(self):
        state = QuadrotorState(position=np.array([1.0, 2.0, 3.0]))
        clone = state.copy()
        clone.position[0] = 99.0
        assert state.position[0] == 1.0

    @settings(max_examples=40, deadline=None)
    @given(
        vx=st.floats(-20, 20),
        vy=st.floats(-20, 20),
        vz=st.floats(-20, 20),
        steps=st.integers(1, 60),
    )
    def test_velocity_always_within_envelope(self, vx, vy, vz, steps):
        """Property: whatever is commanded, the realised velocity stays bounded."""
        params = QuadrotorParams()
        dyn = QuadrotorDynamics(params)
        for _ in range(steps):
            dyn.step(np.array([vx, vy, vz]), 0.0, 0.05)
        assert np.linalg.norm(dyn.state.velocity[:2]) <= params.max_speed + 1e-6
        assert abs(dyn.state.velocity[2]) <= params.max_vertical_speed + 1e-6
        assert np.all(np.isfinite(dyn.state.position))
