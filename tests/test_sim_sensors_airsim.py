"""Tests for the simulated sensors and the AirSim interface node."""

import numpy as np
import pytest

from repro import topics
from repro.rosmw.graph import NodeGraph
from repro.rosmw.message import FlightCommandMsg
from repro.sim.airsim import AirSimInterfaceNode, MissionConfig
from repro.sim.sensors import CameraConfig, DepthCamera, Imu, OdometrySensor
from repro.sim.vehicle import QuadrotorState
from repro.sim.world import Cuboid, World


class TestDepthCamera:
    def test_image_shape_matches_config(self, simple_world):
        camera = DepthCamera(simple_world, CameraConfig(width=16, height=8))
        msg = camera.capture(QuadrotorState(position=np.array([0.0, 0.0, 3.0])))
        assert msg.depth.shape == (8, 16)

    def test_sees_obstacle_ahead(self, simple_world):
        camera = DepthCamera(simple_world, CameraConfig(width=17, height=9))
        msg = camera.capture(QuadrotorState(position=np.array([0.0, 0.0, 3.0])))
        center = msg.depth[4, 8]
        assert center == pytest.approx(8.0, abs=0.3)

    def test_obstacle_behind_not_seen(self, simple_world):
        state = QuadrotorState(position=np.array([20.0, 0.0, 3.0]))
        camera = DepthCamera(simple_world, CameraConfig(width=17, height=9))
        msg = camera.capture(state)
        assert np.isinf(msg.depth[4, 8])

    def test_yaw_rotates_view(self, simple_world):
        # Facing +y (yaw 90 deg) the box at +x is out of the 90 deg FOV.
        state = QuadrotorState(position=np.array([0.0, 0.0, 3.0]), yaw=np.pi / 2)
        camera = DepthCamera(simple_world, CameraConfig(width=17, height=9))
        msg = camera.capture(state)
        assert np.isinf(msg.depth[4, 8])

    def test_max_range_respected(self, simple_world):
        camera = DepthCamera(simple_world, CameraConfig(width=9, height=5, max_range=5.0))
        msg = camera.capture(QuadrotorState(position=np.array([0.0, 0.0, 3.0])))
        finite = msg.depth[np.isfinite(msg.depth)]
        assert np.all(finite <= 5.0 + 1e-9)


class TestImuOdometry:
    def test_imu_reports_acceleration(self):
        imu = Imu(seed=1)
        imu.measure(QuadrotorState(velocity=np.zeros(3), time=0.0))
        msg = imu.measure(QuadrotorState(velocity=np.array([1.0, 0, 0]), time=0.5))
        assert msg.linear_acceleration[0] == pytest.approx(2.0, abs=0.2)

    def test_imu_reset(self):
        imu = Imu(seed=1)
        imu.measure(QuadrotorState(velocity=np.array([5.0, 0, 0]), time=1.0))
        imu.reset()
        msg = imu.measure(QuadrotorState(velocity=np.array([0.0, 0, 0]), time=2.0))
        assert np.allclose(msg.linear_acceleration, 0.0, atol=0.2)

    def test_odometry_reports_pose(self):
        sensor = OdometrySensor()
        state = QuadrotorState(
            position=np.array([1.0, 2.0, 3.0]), velocity=np.array([0.5, 0, 0]), yaw=0.7
        )
        msg = sensor.measure(state)
        assert np.allclose(msg.position, [1, 2, 3])
        assert msg.yaw == pytest.approx(0.7)


def _make_airsim(world=None, goal=(10.0, 0.0, 1.5), time_limit=30.0):
    world = world if world is not None else World(name="open")
    graph = NodeGraph()
    node = AirSimInterfaceNode(
        world=world,
        mission=MissionConfig(
            start=np.array([0.0, 0.0, 1.5]),
            goal=np.array(goal),
            time_limit=time_limit,
        ),
    )
    graph.add_node(node)
    graph.start_all()
    return graph, node


class TestAirSimInterface:
    def test_publishes_sensor_topics(self):
        graph, _ = _make_airsim()
        graph.spin_until(1.0)
        assert graph.topic_bus.publish_count(topics.DEPTH_IMAGE) >= 4
        assert graph.topic_bus.publish_count(topics.ODOMETRY) >= 15
        assert graph.topic_bus.publish_count(topics.IMU) >= 15

    def test_flight_command_moves_vehicle(self):
        graph, node = _make_airsim()
        graph.topic_bus.publish(topics.FLIGHT_COMMAND, FlightCommandMsg(vx=2.0))
        graph.spin_until(3.0)
        assert node.state.position[0] > 2.0

    def test_goal_reached_terminates_mission(self):
        graph, node = _make_airsim(goal=(5.0, 0.0, 1.5))
        graph.topic_bus.publish(topics.FLIGHT_COMMAND, FlightCommandMsg(vx=3.0))
        graph.spin_until(15.0)
        assert node.mission_done
        assert node.outcome.success
        assert node.outcome.reason == "goal reached"
        assert node.outcome.flight_time > 0.0

    def test_collision_terminates_mission(self):
        world = World(name="wall")
        world.add_obstacle(Cuboid.from_center((5.0, 0.0, 2.0), (2, 20, 4)))
        graph, node = _make_airsim(world=world, goal=(20.0, 0.0, 1.5))
        graph.topic_bus.publish(topics.FLIGHT_COMMAND, FlightCommandMsg(vx=4.0))
        graph.spin_until(15.0)
        assert node.mission_done
        assert node.outcome.collision
        assert not node.outcome.success

    def test_timeout_terminates_mission(self):
        graph, node = _make_airsim(goal=(50.0, 0.0, 1.5), time_limit=2.0)
        graph.spin_until(5.0)
        assert node.mission_done
        assert node.outcome.timeout

    def test_trajectory_recorded(self):
        graph, node = _make_airsim(goal=(6.0, 0.0, 1.5))
        graph.topic_bus.publish(topics.FLIGHT_COMMAND, FlightCommandMsg(vx=3.0))
        graph.spin_until(10.0)
        assert len(node.outcome.trajectory) > 3

    def test_abort_marks_failure(self):
        graph, node = _make_airsim(goal=(50.0, 0.0, 1.5))
        graph.spin_until(1.0)
        node.abort(reason="runner time limit", timeout=True)
        assert node.mission_done
        assert not node.outcome.success
        assert node.outcome.timeout
        assert node.outcome.reason == "runner time limit"
        assert node.outcome.flight_time > 0.0

    def test_abort_never_overwrites_a_real_outcome(self):
        graph, node = _make_airsim(goal=(3.0, 0.0, 1.5))
        graph.topic_bus.publish(topics.FLIGHT_COMMAND, FlightCommandMsg(vx=3.0))
        graph.spin_until(10.0)
        assert node.outcome.success
        node.abort(reason="late abort", timeout=True)
        assert node.outcome.success
        assert node.outcome.reason == "goal reached"
        assert not node.outcome.timeout

    def _waypoint_airsim(self, waypoint):
        graph = NodeGraph()
        node = AirSimInterfaceNode(
            world=World(name="open"),
            mission=MissionConfig(
                start=np.array([0.0, 0.0, 1.5]),
                goal=np.array([10.0, 0.0, 1.5]),
                waypoints=(waypoint,),
                time_limit=60.0,
            ),
        )
        graph.add_node(node)
        graph.start_all()
        return graph, node

    def test_waypoint_on_route_then_goal_succeeds(self):
        graph, node = self._waypoint_airsim((6.0, 0.0, 1.5))
        graph.topic_bus.publish(topics.FLIGHT_COMMAND, FlightCommandMsg(vx=3.0))
        graph.spin_until(15.0)
        assert node.waypoints_reached == 1
        assert node.mission_done
        assert node.outcome.success

    def test_intermediate_waypoints_use_flyby_capture_radius(self):
        # 2.5 m off the flight line: outside the 2.0 m goal tolerance but
        # inside the 1.5x fly-by capture radius.  The looser ground-truth
        # credit keeps airsim's route index from diverging from the mission
        # planner's odometry-based advancement under sensor noise.
        graph, node = self._waypoint_airsim((6.0, 2.5, 1.5))
        graph.topic_bus.publish(topics.FLIGHT_COMMAND, FlightCommandMsg(vx=3.0))
        graph.spin_until(15.0)
        assert node.waypoints_reached == 1
        assert node.outcome.success

    def test_missed_waypoint_blocks_success(self):
        # Fly straight through the final goal: the mission must NOT succeed,
        # because the off-route intermediate waypoint was never visited.
        graph, node = self._waypoint_airsim((5.0, 8.0, 1.5))
        graph.topic_bus.publish(topics.FLIGHT_COMMAND, FlightCommandMsg(vx=3.0))
        graph.spin_until(10.0)
        assert node.waypoints_reached == 0
        assert not node.mission_done
        assert np.allclose(node.current_target, [5.0, 8.0, 1.5])

    def test_sensors_stop_after_mission_done(self):
        graph, node = _make_airsim(goal=(3.0, 0.0, 1.5))
        graph.topic_bus.publish(topics.FLIGHT_COMMAND, FlightCommandMsg(vx=3.0))
        graph.spin_until(10.0)
        assert node.mission_done
        count = graph.topic_bus.publish_count(topics.DEPTH_IMAGE)
        graph.spin_until(12.0)
        assert graph.topic_bus.publish_count(topics.DEPTH_IMAGE) == count
