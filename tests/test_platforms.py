"""Tests for the compute platform, redundancy, visual-performance and energy models."""

import pytest

from repro.core.overhead import KERNEL_STAGES, compute_overhead
from repro.platforms.compute import (
    DETECTION_BASE_LATENCIES,
    KERNEL_BASE_LATENCIES,
    PLATFORMS,
    get_platform,
)
from repro.platforms.energy import EnergyModel
from repro.platforms.redundancy import (
    REDUNDANCY_OVERHEADS,
    RedundancyScheme,
    apply_redundancy,
)
from repro.platforms.visual_performance import UAV_SPECS, VisualPerformanceModel


class TestComputePlatforms:
    def test_platform_registry(self):
        assert "i9" in PLATFORMS and "tx2" in PLATFORMS
        assert get_platform("cortex-a57") is get_platform("tx2")
        with pytest.raises(KeyError):
            get_platform("a100")

    def test_paper_spec_numbers(self):
        i9 = get_platform("i9")
        tx2 = get_platform("tx2")
        assert i9.core_count == 14 and i9.core_frequency_ghz == pytest.approx(3.3)
        assert tx2.core_count == 4 and tx2.core_frequency_ghz == pytest.approx(2.0)
        assert i9.compute_power_w > tx2.compute_power_w

    def test_tx2_slower_than_i9(self):
        i9, tx2 = get_platform("i9"), get_platform("tx2")
        for kernel in KERNEL_BASE_LATENCIES:
            assert tx2.kernel_latency(kernel) > i9.kernel_latency(kernel)
        assert tx2.scaled_rate(10.0) < 10.0
        assert tx2.velocity_factor < i9.velocity_factor

    def test_table2_latency_anchors(self):
        i9 = get_platform("i9")
        assert i9.kernel_latency("octomap_generation") == pytest.approx(0.289)
        assert i9.kernel_latency("motion_planner") == pytest.approx(0.083)
        assert i9.kernel_latency("pid_control") == pytest.approx(0.00046)

    def test_detection_latency(self):
        i9 = get_platform("i9")
        assert i9.detection_latency("gad") == pytest.approx(DETECTION_BASE_LATENCIES["gad"])
        assert i9.detection_latency("aad") > i9.detection_latency("gad")

    def test_unknown_kernel_gets_default_latency(self):
        assert get_platform("i9").kernel_latency("unknown_kernel") > 0


class TestVisualPerformanceModel:
    def test_velocity_decreases_with_latency(self):
        model = VisualPerformanceModel(UAV_SPECS["airsim"])
        fast = model.max_safe_velocity(0.05)
        slow = model.max_safe_velocity(1.0)
        assert slow < fast

    def test_flight_time_increases_with_latency(self):
        model = VisualPerformanceModel(UAV_SPECS["airsim"])
        assert model.performance(1.0).flight_time > model.performance(0.05).flight_time

    def test_extra_compute_increases_hover_power_and_mass(self):
        model = VisualPerformanceModel(UAV_SPECS["dji_spark"])
        heavier = model.with_extra_compute(extra_mass_kg=0.05, extra_power_w=10.0)
        assert heavier.spec.mass_kg > model.spec.mass_kg
        assert heavier.spec.hover_power_w > model.spec.hover_power_w
        assert heavier.spec.compute_power_w > model.spec.compute_power_w

    def test_extra_compute_reduces_velocity(self):
        model = VisualPerformanceModel(UAV_SPECS["dji_spark"])
        heavier = model.with_extra_compute(extra_mass_kg=0.06, extra_power_w=10.0)
        assert heavier.max_safe_velocity(0.1) < model.max_safe_velocity(0.1)

    def test_braking_acceleration_positive(self):
        for spec in UAV_SPECS.values():
            assert spec.braking_acceleration > 0
            assert spec.thrust_to_weight > 1.0

    def test_energy_is_power_times_time(self):
        model = VisualPerformanceModel(UAV_SPECS["airsim"])
        perf = model.performance(0.2)
        assert perf.flight_energy == pytest.approx(perf.total_power * perf.flight_time)


class TestRedundancy:
    def test_overhead_table_complete(self):
        assert set(REDUNDANCY_OVERHEADS) == set(RedundancyScheme)
        assert REDUNDANCY_OVERHEADS[RedundancyScheme.TMR].compute_power_multiplier == 3.0

    def test_tmr_worse_than_dmr_worse_than_anomaly(self):
        model = VisualPerformanceModel(UAV_SPECS["dji_spark"])
        latency = 0.2
        anomaly = apply_redundancy(model, RedundancyScheme.ANOMALY_DETECTION, latency)
        dmr = apply_redundancy(model, RedundancyScheme.DMR, latency)
        tmr = apply_redundancy(model, RedundancyScheme.TMR, latency)
        assert anomaly.flight_time < dmr.flight_time < tmr.flight_time
        assert anomaly.flight_energy < dmr.flight_energy < tmr.flight_energy

    def test_redundancy_hurts_small_uav_more(self):
        """Fig. 8: TMR's relative penalty is far larger on the DJI-Spark-class MAV."""
        latency = 0.2
        penalties = {}
        for name in ("airsim", "dji_spark"):
            model = VisualPerformanceModel(UAV_SPECS[name])
            anomaly = apply_redundancy(model, RedundancyScheme.ANOMALY_DETECTION, latency)
            tmr = apply_redundancy(model, RedundancyScheme.TMR, latency)
            penalties[name] = tmr.flight_time / anomaly.flight_time
        assert penalties["dji_spark"] > penalties["airsim"]
        assert penalties["airsim"] > 1.0

    def test_anomaly_detection_nearly_free(self):
        model = VisualPerformanceModel(UAV_SPECS["airsim"])
        base = apply_redundancy(model, RedundancyScheme.NONE, 0.2)
        anomaly = apply_redundancy(model, RedundancyScheme.ANOMALY_DETECTION, 0.2)
        assert anomaly.flight_time == pytest.approx(base.flight_time, rel=1e-3)


class TestEnergyAndOverhead:
    def test_mission_energy(self):
        energy = EnergyModel(get_platform("i9")).mission_energy(10.0, rotor_energy_j=4000.0)
        assert energy.compute_energy == pytest.approx(1650.0)
        assert energy.total == pytest.approx(5650.0)

    def test_negative_flight_time_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(get_platform("i9")).mission_energy(-1.0, 0.0)

    def test_kernel_stage_map_covers_pipeline(self):
        assert set(KERNEL_STAGES.values()) == {"perception", "planning", "control"}

    def test_compute_overhead_aggregation(self):
        fake_result = type(
            "R",
            (),
            {
                "compute_time": {"octomap_generation": 10.0},
                "total_compute_time": 10.0,
                "categories_by_node": {
                    "octomap_generation": {"compute": 9.0, "recovery": 1.0},
                    "anomaly_detection": {"detection:perception": 0.001},
                },
            },
        )()
        report = compute_overhead([fake_result], detector="gad", environment="sparse")
        assert report.recovery_fraction["perception"] == pytest.approx(0.1)
        assert report.detection_fraction["perception"] == pytest.approx(0.0001)
        assert report.total_overhead > 0.1
        assert any("DET" in row for row in report.rows())

    def test_compute_overhead_aad_reports_single_ppc_row(self):
        fake_result = type(
            "R",
            (),
            {
                "compute_time": {"pid_control": 5.0},
                "total_compute_time": 5.0,
                "categories_by_node": {
                    "pid_control": {"compute": 5.0, "recovery": 0.005},
                    "anomaly_detection": {"detection:ppc": 0.0005},
                },
            },
        )()
        report = compute_overhead([fake_result], detector="aad")
        assert list(report.detection_fraction) == ["ppc"]
        assert list(report.recovery_fraction) == ["control"]

    def test_empty_overhead_report(self):
        report = compute_overhead([], detector="gad")
        assert report.total_overhead == 0.0
