"""Tests for path smoothing / trajectory generation and the mission planner."""

import numpy as np
import pytest

from repro import topics
from repro.planning.mission import MissionPlannerNode
from repro.planning.rrt import PlanningProblem
from repro.planning.smoothing import PathSmoother, SmootherConfig
from repro.rosmw.graph import NodeGraph
from repro.rosmw.message import OdometryMsg


def _free_problem():
    return PlanningProblem(start=np.array([0.0, 0.0, 2.0]), goal=np.array([30.0, 0.0, 2.0]))


def _l_shaped_path():
    return [
        np.array([0.0, 0.0, 2.0]),
        np.array([10.0, 0.0, 2.0]),
        np.array([10.0, 10.0, 2.0]),
        np.array([20.0, 10.0, 2.0]),
    ]


class TestPathSmoother:
    def test_shortcut_removes_redundant_nodes_in_free_space(self):
        smoother = PathSmoother()
        path = [np.array([float(x), 0.0, 2.0]) for x in range(0, 31, 5)]
        shortcut = smoother.shortcut(path, _free_problem())
        assert len(shortcut) == 2

    def test_shortcut_preserves_endpoints(self):
        smoother = PathSmoother()
        shortcut = smoother.shortcut(_l_shaped_path(), _free_problem())
        assert np.allclose(shortcut[0], [0, 0, 2])
        assert np.allclose(shortcut[-1], [20, 10, 2])

    def test_shortcut_keeps_detour_when_wall_in_between(self):
        centers = [[10.0, y, z] for y in np.arange(-15, 8.0, 1.0) for z in np.arange(0.5, 8.5, 1.0)]
        problem = PlanningProblem(
            start=np.array([0.0, 0.0, 2.0]),
            goal=np.array([20.0, 0.0, 2.0]),
            occupied_centers=np.array(centers),
        )
        path = [
            np.array([0.0, 0.0, 2.0]),
            np.array([10.0, 12.0, 2.0]),
            np.array([20.0, 0.0, 2.0]),
        ]
        shortcut = PathSmoother().shortcut(path, problem)
        assert len(shortcut) == 3

    def test_resample_spacing(self):
        smoother = PathSmoother(SmootherConfig(waypoint_spacing=2.0))
        samples = smoother.resample([np.array([0.0, 0, 2]), np.array([20.0, 0, 2])])
        assert len(samples) >= 11
        gaps = np.linalg.norm(np.diff(samples, axis=0), axis=1)
        assert np.all(gaps <= 2.0 + 1e-6)

    def test_resample_degenerate_inputs(self):
        smoother = PathSmoother()
        assert smoother.resample([]).shape == (0, 3)
        assert smoother.resample([np.array([1.0, 2.0, 3.0])]).shape == (1, 3)

    def test_trajectory_waypoint_fields(self):
        smoother = PathSmoother(SmootherConfig(cruise_speed=4.0))
        trajectory = smoother.to_trajectory(
            [np.array([0.0, 0, 2]), np.array([20.0, 0, 2])], _free_problem(),
            planner_name="rrt_star", replan_index=2,
        )
        assert trajectory.planner_name == "rrt_star"
        assert trajectory.replan_index == 2
        assert len(trajectory) > 2
        first = trajectory.waypoints[0]
        assert first.yaw == pytest.approx(0.0, abs=1e-6)
        assert first.vx == pytest.approx(4.0, abs=0.5)

    def test_trajectory_slows_near_goal(self):
        smoother = PathSmoother(SmootherConfig(cruise_speed=4.0, approach_distance=6.0))
        trajectory = smoother.to_trajectory(
            [np.array([0.0, 0, 2]), np.array([30.0, 0, 2])], _free_problem()
        )
        speeds = [np.linalg.norm([w.vx, w.vy, w.vz]) for w in trajectory.waypoints]
        assert speeds[-2] < speeds[1]

    def test_trajectory_times_monotonic(self):
        smoother = PathSmoother()
        trajectory = smoother.to_trajectory(
            _l_shaped_path(), _free_problem()
        )
        times = [w.time_from_start for w in trajectory.waypoints]
        assert all(b > a for a, b in zip(times[:-1], times[1:]))

    def test_empty_path_gives_empty_trajectory(self):
        trajectory = PathSmoother().to_trajectory([], _free_problem())
        assert len(trajectory) == 0


class TestMissionPlannerNode:
    def _graph_with_mission(self, goal=(20.0, 0.0, 2.0)):
        graph = NodeGraph()
        node = MissionPlannerNode(goal=np.array(goal), update_rate=2.0)
        graph.add_node(node)
        graph.start_all()
        return graph, node

    def test_publishes_goal_and_distance(self):
        graph, node = self._graph_with_mission()
        graph.topic_bus.publish(topics.ODOMETRY, OdometryMsg(position=np.array([0.0, 0.0, 2.0])))
        graph.spin_until(1.0)
        status = graph.topic_bus.last_message(topics.MISSION_STATUS)
        assert np.allclose(status.goal, [20, 0, 2])
        assert status.distance_to_goal == pytest.approx(20.0)
        assert not status.completed

    def test_completion_latches(self):
        graph, node = self._graph_with_mission(goal=(1.0, 0.0, 2.0))
        graph.topic_bus.publish(topics.ODOMETRY, OdometryMsg(position=np.array([0.5, 0.0, 2.0])))
        graph.spin_until(1.0)
        assert node.completed
        # Even if the vehicle drifts away later, the mission stays completed.
        graph.topic_bus.publish(topics.ODOMETRY, OdometryMsg(position=np.array([10.0, 0.0, 2.0])))
        graph.spin_until(2.0)
        assert graph.topic_bus.last_message(topics.MISSION_STATUS).completed

    def test_status_without_odometry(self):
        graph, node = self._graph_with_mission()
        graph.spin_until(1.0)
        status = graph.topic_bus.last_message(topics.MISSION_STATUS)
        assert status.distance_to_goal == float("inf")

    def test_reset_kernel(self):
        graph, node = self._graph_with_mission(goal=(1.0, 0.0, 2.0))
        graph.topic_bus.publish(topics.ODOMETRY, OdometryMsg(position=np.array([0.5, 0.0, 2.0])))
        graph.spin_until(1.0)
        node.reset_kernel()
        assert not node.completed

    def test_final_completion_is_conservative_against_noise(self):
        # A noise-optimistic odometry sample at exactly the tolerance must
        # NOT latch completion (which halts the control stage): the final
        # goal only completes inside completion_factor * tolerance, so the
        # ground-truth success check in the simulator always fires first.
        graph, node = self._graph_with_mission(goal=(10.0, 0.0, 2.0))
        at_tolerance = np.array([10.0 - node.goal_tolerance + 0.05, 0.0, 2.0])
        graph.topic_bus.publish(topics.ODOMETRY, OdometryMsg(position=at_tolerance))
        graph.spin_until(1.0)
        assert not node.completed
        inside = np.array([10.0 - node.goal_tolerance * 0.7, 0.0, 2.0])
        graph.topic_bus.publish(topics.ODOMETRY, OdometryMsg(position=inside))
        graph.spin_until(2.0)
        assert node.completed

    def _graph_with_route(self):
        graph = NodeGraph()
        node = MissionPlannerNode(
            goal=np.array([20.0, 0.0, 2.0]),
            update_rate=2.0,
            waypoints=((5.0, 5.0, 2.0), (12.0, -5.0, 2.0)),
        )
        graph.add_node(node)
        graph.start_all()
        return graph, node

    def test_route_publishes_first_waypoint_as_goal(self):
        graph, node = self._graph_with_route()
        graph.topic_bus.publish(topics.ODOMETRY, OdometryMsg(position=np.array([0.0, 0.0, 2.0])))
        graph.spin_until(1.0)
        status = graph.topic_bus.last_message(topics.MISSION_STATUS)
        assert np.allclose(status.goal, [5.0, 5.0, 2.0])
        assert not status.completed

    def test_route_advances_through_waypoints(self):
        graph, node = self._graph_with_route()
        graph.topic_bus.publish(topics.ODOMETRY, OdometryMsg(position=np.array([5.0, 5.0, 2.0])))
        graph.spin_until(1.0)
        status = graph.topic_bus.last_message(topics.MISSION_STATUS)
        assert np.allclose(status.goal, [12.0, -5.0, 2.0])
        assert node.route_index == 1
        graph.topic_bus.publish(topics.ODOMETRY, OdometryMsg(position=np.array([12.0, -5.0, 2.0])))
        graph.spin_until(2.0)
        status = graph.topic_bus.last_message(topics.MISSION_STATUS)
        assert np.allclose(status.goal, [20.0, 0.0, 2.0])
        assert not node.completed

    def test_route_completes_only_at_final_goal(self):
        graph, node = self._graph_with_route()
        for t, position in ((1.0, [5.0, 5.0, 2.0]), (2.0, [12.0, -5.0, 2.0]), (3.0, [20.0, 0.0, 2.0])):
            graph.topic_bus.publish(topics.ODOMETRY, OdometryMsg(position=np.array(position)))
            graph.spin_until(t)
        assert node.completed
        assert graph.topic_bus.last_message(topics.MISSION_STATUS).completed

    def test_route_reset_restarts_from_first_waypoint(self):
        graph, node = self._graph_with_route()
        graph.topic_bus.publish(topics.ODOMETRY, OdometryMsg(position=np.array([5.0, 5.0, 2.0])))
        graph.spin_until(1.0)
        assert node.route_index == 1
        node.reset_kernel()
        assert node.route_index == 0
        assert np.allclose(node.current_target, [5.0, 5.0, 2.0])
