"""Tests for point cloud generation and the occupancy map kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import topics
from repro.perception.occupancy import OccupancyMap, OctoMapNode
from repro.perception.point_cloud import PointCloudGenerator, PointCloudNode
from repro.rosmw.graph import NodeGraph
from repro.rosmw.message import DepthImageMsg, PointCloudMsg
from repro.sim.sensors import CameraConfig, DepthCamera
from repro.sim.vehicle import QuadrotorState
from repro.sim.world import World


def _depth_msg_from_world(world, position=(0.0, 0.0, 3.0), yaw=0.0):
    camera = DepthCamera(world, CameraConfig(width=17, height=9))
    return camera.capture(QuadrotorState(position=np.asarray(position, float), yaw=yaw))


class TestPointCloudGenerator:
    def test_empty_depth_image(self):
        generator = PointCloudGenerator()
        cloud = generator.compute(DepthImageMsg())
        assert cloud.points.shape == (0, 3)

    def test_points_lie_on_obstacle_surface(self, simple_world):
        generator = PointCloudGenerator()
        cloud = generator.compute(_depth_msg_from_world(simple_world))
        assert len(cloud.points) > 0
        # Every reconstructed point must be on (or extremely near) geometry.
        for point in cloud.points:
            assert simple_world.distance_to_nearest(point) < 0.3 or point[2] < 0.3

    def test_no_points_when_nothing_visible(self):
        world = World(name="empty")
        generator = PointCloudGenerator()
        msg = _depth_msg_from_world(world, position=(0, 0, 30.0))
        # Camera is above the world looking forward: only infinite returns.
        cloud = generator.compute(msg)
        assert len(cloud.points) == 0

    def test_stride_reduces_point_count(self, simple_world):
        full = PointCloudGenerator(stride=1).compute(_depth_msg_from_world(simple_world))
        strided = PointCloudGenerator(stride=2).compute(_depth_msg_from_world(simple_world))
        assert len(strided.points) < len(full.points)

    def test_invalid_stride_rejected(self):
        with pytest.raises(ValueError):
            PointCloudGenerator(stride=0)

    def test_max_points_cap(self, simple_world):
        generator = PointCloudGenerator(max_points=5)
        cloud = generator.compute(_depth_msg_from_world(simple_world))
        assert len(cloud.points) <= 5

    def test_yaw_rotation_applied(self, simple_world):
        # Obstacle at +x: when the camera faces +x the points have x > 0.
        generator = PointCloudGenerator()
        cloud = generator.compute(_depth_msg_from_world(simple_world, yaw=0.0))
        obstacle_points = cloud.points[cloud.points[:, 2] > 0.5]
        assert np.all(obstacle_points[:, 0] > 5.0)


class TestOccupancyMap:
    def test_insert_marks_voxels_occupied(self):
        occupancy = OccupancyMap(resolution=1.0)
        occupancy.insert_point_cloud(np.array([[5.2, 0.1, 2.0]]))
        assert occupancy.is_occupied(np.array([5.4, 0.3, 2.2]))
        assert not occupancy.is_occupied(np.array([9.0, 0.0, 2.0]))

    def test_occupied_centers_match_resolution_grid(self):
        occupancy = OccupancyMap(resolution=2.0)
        occupancy.insert_point_cloud(np.array([[5.0, 1.0, 3.0]]))
        centers = occupancy.occupied_centers()
        assert centers.shape == (1, 3)
        assert np.allclose(centers[0], [5.0, 1.0, 3.0])

    def test_log_odds_clamped(self):
        occupancy = OccupancyMap(clamp=2.0)
        for _ in range(10):
            occupancy.insert_point_cloud(np.array([[1.0, 1.0, 1.0]]))
        key = occupancy.key_for(np.array([1.0, 1.0, 1.0]))
        assert occupancy._log_odds[key] <= 2.0

    def test_set_voxel_free(self):
        occupancy = OccupancyMap()
        occupancy.insert_point_cloud(np.array([[1.0, 1.0, 1.0]]))
        key = occupancy.key_for(np.array([1.0, 1.0, 1.0]))
        occupancy.set_voxel(key, occupied=False)
        assert not occupancy.is_occupied(np.array([1.0, 1.0, 1.0]))

    def test_non_finite_points_ignored(self):
        occupancy = OccupancyMap()
        touched = occupancy.insert_point_cloud(
            np.array([[np.inf, 0, 0], [np.nan, 1, 1], [2.0, 2.0, 2.0]])
        )
        assert touched == 1
        assert occupancy.num_occupied == 1

    def test_empty_cloud(self):
        occupancy = OccupancyMap()
        assert occupancy.insert_point_cloud(np.zeros((0, 3))) == 0

    def test_invalid_resolution_rejected(self):
        with pytest.raises(ValueError):
            OccupancyMap(resolution=0.0)

    def test_clear(self):
        occupancy = OccupancyMap()
        occupancy.insert_point_cloud(np.array([[1.0, 1.0, 1.0]]))
        occupancy.clear()
        assert occupancy.num_voxels == 0

    @settings(max_examples=30, deadline=None)
    @given(
        x=st.floats(-40, 40), y=st.floats(-40, 40), z=st.floats(0, 10),
        resolution=st.floats(0.5, 3.0),
    )
    def test_inserted_point_always_occupied(self, x, y, z, resolution):
        """Property: after inserting a point, its containing voxel is occupied."""
        occupancy = OccupancyMap(resolution=resolution)
        occupancy.insert_point_cloud(np.array([[x, y, z]]))
        assert occupancy.is_occupied(np.array([x, y, z]))
        center = occupancy.center_of(occupancy.key_for(np.array([x, y, z])))
        assert np.all(np.abs(center - np.array([x, y, z])) <= resolution / 2 + 1e-9)


class TestKernelNodes:
    def test_point_cloud_node_pipeline(self, simple_world):
        graph = NodeGraph()
        node = PointCloudNode()
        graph.add_node(node)
        graph.start_all()
        graph.topic_bus.publish(topics.DEPTH_IMAGE, _depth_msg_from_world(simple_world))
        cloud = graph.topic_bus.last_message(topics.POINT_CLOUD)
        assert cloud is not None and len(cloud.points) > 0
        assert node.invocation_count == 1
        assert node.accounting.busy_time > 0

    def test_octomap_node_integrates_latest_cloud(self, simple_world):
        graph = NodeGraph()
        node = OctoMapNode(update_rate=2.0)
        graph.add_node(node)
        graph.start_all()
        graph.topic_bus.publish(
            topics.POINT_CLOUD, PointCloudMsg(points=np.array([[3.0, 0.0, 2.0]]))
        )
        graph.spin_until(1.0)
        map_msg = graph.topic_bus.last_message(topics.OCCUPANCY_MAP)
        assert map_msg is not None
        assert len(map_msg.occupied_centers) == 1

    def test_octomap_internal_fault_flips_voxel(self):
        graph = NodeGraph()
        node = OctoMapNode()
        graph.add_node(node)
        graph.start_all()
        node.map.insert_point_cloud(np.array([[3.0, 0.0, 2.0]]))
        occupied_before = node.map.num_occupied
        description = node.corrupt_internal(np.random.default_rng(0), bit=40)
        assert "voxel" in description
        assert node.map.num_occupied != occupied_before

    def test_octomap_fault_on_empty_map_adds_spurious_voxel(self):
        graph = NodeGraph()
        node = OctoMapNode()
        graph.add_node(node)
        graph.start_all()
        node.corrupt_internal(np.random.default_rng(0), bit=40)
        assert node.map.num_occupied == 1

    def test_point_cloud_recompute_republishes(self, simple_world):
        graph = NodeGraph()
        node = PointCloudNode()
        graph.add_node(node)
        graph.start_all()
        graph.topic_bus.publish(topics.DEPTH_IMAGE, _depth_msg_from_world(simple_world))
        count_before = graph.topic_bus.publish_count(topics.POINT_CLOUD)
        assert node.recompute()
        assert graph.topic_bus.publish_count(topics.POINT_CLOUD) == count_before + 1
        assert node.accounting.categories.get("recovery", 0.0) > 0

    def test_recompute_without_prior_run_is_noop(self):
        graph = NodeGraph()
        node = PointCloudNode()
        graph.add_node(node)
        graph.start_all()
        assert not node.recompute()
